(** Linux page-cache writeback model.

    Captured frames that bypass the kernel's network stack must still go
    through the kernel's file system, and at 100 Gbps the page cache
    becomes the bottleneck (paper §8.1.3 and Appendix B).  The model
    follows the kernel's behaviour:

    - dirty data accumulates in the cache as the writer writes;
    - the disk drains it at the storage's writeback rate;
    - above [dirty_background_ratio] the kernel starts asynchronous
      flushing (writers slow a little from flush competition);
    - at the {e midpoint} of [dirty_background_ratio] and [dirty_ratio]
      the kernel begins throttling the writing process
      ([balance_dirty_pages]), which is the steep latency cliff the
      paper found "surprisingly" before [dirty_ratio] itself. *)

type t

val create :
  free_cache_bytes:float ->
  drain_rate:float ->
  dirty_background_ratio:float ->
  dirty_ratio:float ->
  t
(** Ratios are percentages in (0, 100], with
    [dirty_background_ratio < dirty_ratio]. *)

val of_profile : Host_profile.t -> t
(** The paper's tuned capture host: the profile's free cache and drain
    rate with vm.dirty ratios 60/80 (the [Dpdk_path] defaults). *)

val write : t -> float -> unit
(** Stage bytes into the cache (dirtying pages). *)

val advance : t -> dt:float -> unit
(** Let the disk drain for [dt] seconds. *)

val dirty_bytes : t -> float

val dirty_fraction : t -> float
(** Dirty bytes as a fraction of the free cache, in [0, 1]. *)

val used_percent : t -> float
(** [100 * dirty_fraction] — the x-axis of Fig. 14. *)

val background_threshold : t -> float
(** Dirty fraction at which async flushing starts. *)

val throttle_threshold : t -> float
(** Midpoint of the two ratios: where writer throttling begins. *)

val hard_threshold : t -> float
(** [dirty_ratio]: beyond this, writers block outright. *)

val throttle_factor : t -> float
(** Multiplier in (0, 1] on the writer's progress: 1 below the midpoint,
    then the drain-to-write balance the kernel enforces. *)

val writer_latency_multiplier : t -> float
(** Multiplier on per-writev latency: 1 below background, growing with
    flush competition, and jumping by orders of magnitude once the
    writer is throttled. *)

val total_written : t -> float
val total_drained : t -> float
