(** The DPDK kernel-bypass capture path.

    A time-stepped simulation of Patchwork's custom DPDK application:
    frames arrive at an offered rate into per-core RX rings, worker
    cores truncate them and serialize batches of 128 frames to a pcap
    file with [writev], and the page cache absorbs the writes until
    writeback throttling sets in.  Loss occurs when the RX rings
    overflow — either because the cores cannot keep up or because the
    writer is being throttled by the kernel.

    This is the model behind Tables 1 and 2 and the tcpdump/DPDK
    capture-bound experiments in §8.1. *)

type config = {
  profile : Host_profile.t;
  cores : int;  (** worker cores polling RX rings *)
  truncation : int;  (** bytes stored per frame *)
  dirty_background_ratio : float;  (** vm.dirty_background_ratio, percent *)
  dirty_ratio : float;  (** vm.dirty_ratio, percent *)
  burstiness : float;
      (** std-dev of the per-step load multiplier (0 = perfectly smooth
          arrivals); real traffic generators show a few percent *)
  baseline_loss : float;
      (** constant drop floor from NIC/descriptor noise, as a fraction
          of offered frames *)
}

val default_config : config
(** 60:80 thresholds, 200 B truncation, 5 cores, mild burstiness. *)

type result = {
  offered_frames : float;
  captured_frames : float;
  dropped_frames : float;
  loss_percent : float;
  bytes_written : float;
  peak_cache_used_percent : float;
  throttled_seconds : float;  (** time spent with the writer throttled *)
  writev_latency : Netcore.Histogram.Log2.t;
      (** bpftrace-style latency histogram of writev calls, nanoseconds *)
}

val run :
  ?seed:int ->
  config ->
  offered_rate:float ->
  frame_size:int ->
  duration:float ->
  result
(** Simulate a capture of [duration] seconds of traffic offered at
    [offered_rate] bits/s of fixed-size frames (the DPDK-pktgen setup of
    the paper's experiments). *)

val capacity_rate : config -> frame_size:int -> float
(** Offered bit rate at which the configured cores saturate (ignoring
    the storage bottleneck). *)

val host_path : Obs.Ledger.host_path
(** This path's identity ([Dpdk]) in the loss-attribution ledger. *)
