open Netcore

type vm_request = {
  cores : int;
  ram_gb : int;
  storage_gb : int;
  dedicated_nics : int;
  use_fpga : bool;
}

type request = { site : string; vms : vm_request list }

type slice = {
  slice_id : int;
  slice_site : string;
  slice_vms : vm_request list;
  created_at : float;
}

type error = Insufficient_resources of string | Backend_error of string

type site_inventory = {
  base_dedicated_nics : int;
  base_fpgas : int;
  base_cores : int;
  base_ram_gb : int;
  base_storage_gb : int;
  mutable external_utilization : float;
  mutable used_dedicated_nics : int;
  mutable used_fpgas : int;
  mutable used_cores : int;
  mutable used_ram_gb : int;
  mutable used_storage_gb : int;
}

type availability = {
  avail_dedicated_nics : int;
  avail_fpgas : int;
  avail_cores : int;
  avail_ram_gb : int;
  avail_storage_gb : int;
}

type t = {
  engine : Simcore.Engine.t;
  rng : Rng.t;
  inventories : (string, site_inventory) Hashtbl.t;
  mutable outages : (float * float) list;
  mutable transient_failure_prob : float;
  mutable next_slice_id : int;
  mutable live_slices : int;
}

let create engine rng (model : Info_model.t) =
  let inventories = Hashtbl.create 32 in
  Array.iter
    (fun (s : Info_model.site) ->
      let sum f = List.fold_left (fun acc w -> acc + f w) 0 s.Info_model.workers in
      Hashtbl.add inventories s.Info_model.name
        {
          base_dedicated_nics = Info_model.dedicated_nics s;
          base_fpgas = Info_model.fpga_count s;
          base_cores = sum (fun w -> w.Info_model.cores);
          base_ram_gb = sum (fun w -> w.Info_model.ram_gb);
          base_storage_gb = sum (fun w -> w.Info_model.storage_gb);
          external_utilization = 0.0;
          used_dedicated_nics = 0;
          used_fpgas = 0;
          used_cores = 0;
          used_ram_gb = 0;
          used_storage_gb = 0;
        })
    model.Info_model.sites;
  {
    engine;
    rng;
    inventories;
    outages = [];
    transient_failure_prob = 0.0;
    next_slice_id = 0;
    live_slices = 0;
  }

let set_outages t outages = t.outages <- outages
let set_transient_failure_prob t p = t.transient_failure_prob <- p

let inventory t site =
  match Hashtbl.find_opt t.inventories site with
  | Some inv -> inv
  | None -> invalid_arg ("Allocator: unknown site " ^ site)

let set_external_utilization t ~site frac =
  if frac < 0.0 || frac > 1.0 then
    invalid_arg "Allocator.set_external_utilization: fraction out of [0,1]";
  (inventory t site).external_utilization <- frac

let available t ~site =
  let inv = inventory t site in
  let externally_taken base = int_of_float (Float.round (float_of_int base *. inv.external_utilization)) in
  let avail base used = max 0 (base - externally_taken base - used) in
  {
    avail_dedicated_nics = avail inv.base_dedicated_nics inv.used_dedicated_nics;
    avail_fpgas = avail inv.base_fpgas inv.used_fpgas;
    avail_cores = avail inv.base_cores inv.used_cores;
    avail_ram_gb = avail inv.base_ram_gb inv.used_ram_gb;
    avail_storage_gb = avail inv.base_storage_gb inv.used_storage_gb;
  }

let request_totals req =
  List.fold_left
    (fun (n, f, c, r, s) vm ->
      ( n + vm.dedicated_nics,
        (f + if vm.use_fpga then 1 else 0),
        c + vm.cores,
        r + vm.ram_gb,
        s + vm.storage_gb ))
    (0, 0, 0, 0, 0) req.vms

let allocation_latency t req =
  (* The FABRIC allocator slows superlinearly on big slices; Patchwork
     reacts by preferring small slices. *)
  let vms = List.length req.vms in
  let base = 18.0 +. (9.0 *. float_of_int vms) +. (1.5 *. float_of_int (vms * vms)) in
  base *. (0.8 +. (0.4 *. Rng.float t.rng))

let can_satisfy t req =
  let a = available t ~site:req.site in
  let nics, fpgas, cores, ram, storage = request_totals req in
  nics <= a.avail_dedicated_nics
  && fpgas <= a.avail_fpgas
  && cores <= a.avail_cores
  && ram <= a.avail_ram_gb
  && storage <= a.avail_storage_gb

let in_outage t =
  let now = Simcore.Engine.now t.engine in
  List.exists (fun (a, b) -> now >= a && now <= b) t.outages

let create_slice t req =
  if in_outage t then Error (Backend_error "control framework unavailable")
  else if Rng.bernoulli t.rng t.transient_failure_prob then
    Error (Backend_error "transient allocation failure")
  else begin
    let inv = inventory t req.site in
    let a = available t ~site:req.site in
    let nics, fpgas, cores, ram, storage = request_totals req in
    let insufficient what = Error (Insufficient_resources what) in
    if nics > a.avail_dedicated_nics then insufficient "dedicated NICs"
    else if fpgas > a.avail_fpgas then insufficient "FPGA cards"
    else if cores > a.avail_cores then insufficient "CPU cores"
    else if ram > a.avail_ram_gb then insufficient "RAM"
    else if storage > a.avail_storage_gb then insufficient "storage"
    else begin
      inv.used_dedicated_nics <- inv.used_dedicated_nics + nics;
      inv.used_fpgas <- inv.used_fpgas + fpgas;
      inv.used_cores <- inv.used_cores + cores;
      inv.used_ram_gb <- inv.used_ram_gb + ram;
      inv.used_storage_gb <- inv.used_storage_gb + storage;
      let id = t.next_slice_id in
      t.next_slice_id <- id + 1;
      t.live_slices <- t.live_slices + 1;
      Ok
        {
          slice_id = id;
          slice_site = req.site;
          slice_vms = req.vms;
          created_at = Simcore.Engine.now t.engine;
        }
    end
  end

let delete_slice t slice =
  let inv = inventory t slice.slice_site in
  let nics, fpgas, cores, ram, storage =
    request_totals { site = slice.slice_site; vms = slice.slice_vms }
  in
  inv.used_dedicated_nics <- max 0 (inv.used_dedicated_nics - nics);
  inv.used_fpgas <- max 0 (inv.used_fpgas - fpgas);
  inv.used_cores <- max 0 (inv.used_cores - cores);
  inv.used_ram_gb <- max 0 (inv.used_ram_gb - ram);
  inv.used_storage_gb <- max 0 (inv.used_storage_gb - storage);
  t.live_slices <- max 0 (t.live_slices - 1)

let active_slices t = t.live_slices
