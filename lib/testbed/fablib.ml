type t = {
  engine : Simcore.Engine.t;
  model : Info_model.t;
  switches : (string, Switch.t) Hashtbl.t;
  allocator : Allocator.t;
  telemetry : Telemetry.t;
  rng : Netcore.Rng.t;
}

let create ?(n_sites = 30) ~seed engine =
  let model = Info_model.generate ~n_sites ~seed () in
  let rng = Netcore.Rng.create (seed * 104729) in
  let telemetry = Telemetry.create engine in
  let switches = Hashtbl.create n_sites in
  Array.iter
    (fun (s : Info_model.site) ->
      let sw =
        Switch.create engine ~site_name:s.Info_model.name
          ~ports:(Info_model.total_ports s) ~line_rate:s.Info_model.line_rate
      in
      Hashtbl.add switches s.Info_model.name sw;
      Telemetry.register_switch telemetry sw)
    model.Info_model.sites;
  let allocator = Allocator.create engine (Netcore.Rng.split rng) model in
  { engine; model; switches; allocator; telemetry; rng }

let engine t = t.engine
let model t = t.model
let allocator t = t.allocator
let telemetry t = t.telemetry
let rng t = t.rng

let switch t ~site =
  match Hashtbl.find_opt t.switches site with
  | Some sw -> sw
  | None -> raise Not_found

let uplink_ports t ~site =
  let s = Info_model.site t.model site in
  List.init s.Info_model.uplinks Fun.id

let downlink_ports t ~site =
  let s = Info_model.site t.model site in
  List.init s.Info_model.downlinks (fun i -> s.Info_model.uplinks + i)

let all_ports t ~site =
  let s = Info_model.site t.model site in
  List.init (Info_model.total_ports s) Fun.id

let start_telemetry ?until t = Telemetry.start ?until t.telemetry
