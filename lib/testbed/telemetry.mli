(** MFlib-style telemetry: SNMP polling of switch counters into a
    Prometheus-like time-series store.

    FABRIC polls every switch port every 5 minutes; Patchwork consumes
    the resulting series to rank ports by activity, detect mirror
    congestion, and (in this reproduction) to regenerate the
    testbed-utilization figures. *)

type t

val create : Simcore.Engine.t -> t

val register_switch : t -> Switch.t -> unit
(** Add a site switch to the polling set. *)

val poll_period : float
(** 300 seconds, as on FABRIC. *)

val start : ?until:float -> t -> unit
(** Begin periodic polling on the engine. *)

val poll_now : t -> unit
(** Take one immediate sample of every registered switch. *)

val store : t -> Simcore.Timeseries.t
(** Raw access to the underlying series (keys are
    ["SITE/p<N>/tx_bytes"], [".../rx_bytes"], [".../tx_rate"],
    [".../rx_rate"], [".../drops"]). *)

val port_avg_rate :
  t -> site:string -> port:int -> window:float -> at:float -> float
(** Average Tx+Rx byte rate of a port over a trailing window, from the
    stored 5-minute rate samples; 0 if no samples. *)

val busiest_port :
  t -> site:string -> candidates:int list -> window:float -> at:float -> int option
(** The candidate port with the highest {!port_avg_rate}; [None] if
    every candidate is idle (zero rate). *)

val channel_rates_at :
  t -> site:string -> port:int -> at:float -> (float * float) option
(** Most recent (tx, rx) byte-rate sample at or before [at]. *)

val export_metrics : ?registry:Obs.Registry.t -> t -> unit
(** Re-export the most recent sample of every registered switch port
    (tx/rx rates, cumulative byte and drop counters) as labelled gauges
    [testbed_port_*{site=...,port=...}] in the metrics registry
    (default {!Obs.Registry.default}) — one exposition endpoint for the
    testbed's SNMP series and Patchwork's own pipeline metrics. *)

val weekly_rate_sums : t -> weeks:int -> float array
(** For each week index, the sum over all ports and polls of the stored
    5-minute Tx byte-rate samples (the Fig. 6 methodology). *)
