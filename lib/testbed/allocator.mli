(** The testbed's slice allocator.

    Models the part of FABRIC's control framework that Patchwork
    interacts with: slice requests against finite per-site inventories,
    allocation latency that grows with slice size (the paper notes the
    allocator "often struggled when handling large slices"), transient
    back-end outages, and resource pressure from other researchers'
    experiments. *)

type vm_request = {
  cores : int;
  ram_gb : int;
  storage_gb : int;
  dedicated_nics : int;
  use_fpga : bool;
}

type request = { site : string; vms : vm_request list }

type slice = {
  slice_id : int;
  slice_site : string;
  slice_vms : vm_request list;
  created_at : float;
}

type error =
  | Insufficient_resources of string
      (** the site cannot satisfy the request right now *)
  | Backend_error of string
      (** transient control-framework failure; retrying later may work *)

type t

val create : Simcore.Engine.t -> Netcore.Rng.t -> Info_model.t -> t

val set_outages : t -> (float * float) list -> unit
(** Absolute time intervals during which every allocation fails with
    [Backend_error] (models the September back-end incidents of
    Fig. 10). *)

val set_transient_failure_prob : t -> float -> unit
(** Probability that any single allocation fails spuriously. *)

val set_external_utilization : t -> site:string -> float -> unit
(** Fraction of the site's dedicated NICs and storage currently consumed
    by other researchers' slices, in [0, 1]. *)

type availability = {
  avail_dedicated_nics : int;
  avail_fpgas : int;
  avail_cores : int;
  avail_ram_gb : int;
  avail_storage_gb : int;
}

val available : t -> site:string -> availability

val allocation_latency : t -> request -> float
(** Expected time (seconds) for the allocator to handle the request;
    grows with the number of VMs. *)

val can_satisfy : t -> request -> bool
(** Pure feasibility check against current availability — Patchwork
    "carries out its own allocation simulations to ensure that resource
    requests can always be satisfied" (§8.3) before bothering the real
    allocator.  Ignores transient back-end state. *)

val create_slice : t -> request -> (slice, error) result
val delete_slice : t -> slice -> unit
val active_slices : t -> int
