open Netcore

type nic_kind = Shared_connectx | Dedicated_connectx | Alveo_fpga

type worker = {
  worker_name : string;
  cores : int;
  ram_gb : int;
  storage_gb : int;
  dedicated_nics : int;
  has_fpga : bool;
}

type site = {
  name : string;
  index : int;
  uplinks : int;
  downlinks : int;
  workers : worker list;
  line_rate : float;
  teaching_only : bool;
}

type t = { seed : int; sites : site array }

(* Site names evoke FABRIC's real deployment (universities, exchange
   points, international sites); the last one is the teaching-only site. *)
let site_names_pool =
  [|
    "STAR"; "WASH"; "DALL"; "SALT"; "UTAH"; "NCSA"; "MICH"; "MASS"; "TACC";
    "MAXG"; "GPNN"; "CLEM"; "GATC"; "UCSD"; "FIUN"; "UKYE"; "INDI"; "PSCC";
    "RUTG"; "SRIC"; "CERN"; "AMST"; "BRIS"; "TOKY"; "HAWI"; "LOSA"; "NEWY";
    "KANS"; "ATLA"; "SEAT"; "PRIN"; "EDCC"; "CICA"; "MARY"; "EDUKY";
  |]

let make_worker rng site_name i ~with_fpga =
  {
    worker_name = Printf.sprintf "%s-w%d" site_name (i + 1);
    cores = Rng.choice rng [| 32; 64; 64; 128 |];
    ram_gb = Rng.choice rng [| 256; 384; 512 |];
    storage_gb = Rng.choice rng [| 2000; 4000; 8000 |];
    dedicated_nics = Rng.int_in rng 0 2;
    has_fpga = with_fpga;
  }

let make_site rng index name ~teaching_only =
  let worker_count = if teaching_only then 2 else Rng.int_in rng 3 6 in
  let fpga_worker = if teaching_only then -1 else Rng.int rng worker_count in
  let workers =
    List.init worker_count (fun i ->
        let w = make_worker rng name i ~with_fpga:(i = fpga_worker && Rng.bernoulli rng 0.6) in
        if teaching_only then { w with dedicated_nics = 0; has_fpga = false }
        else if i = 0 && w.dedicated_nics = 0 then { w with dedicated_nics = 1 }
        else w)
  in
  (* Downlinks: one port per shared NIC per worker plus the dedicated
     NIC ports (each dedicated NIC is dual-port). *)
  let dedicated_ports =
    2 * List.fold_left (fun acc w -> acc + w.dedicated_nics) 0 workers
  in
  let shared_ports = List.length workers * Rng.int_in rng 2 4 in
  let extra = Rng.int_in rng 2 10 in
  {
    name;
    index;
    uplinks = Rng.choice rng [| 1; 2; 2; 3; 3; 4 |];
    downlinks = dedicated_ports + shared_ports + extra;
    workers;
    line_rate = Rng.choice rng [| 100e9; 100e9; 100e9; 25e9 |];
    teaching_only;
  }

let generate ?(n_sites = 30) ~seed () =
  if n_sites < 2 || n_sites > Array.length site_names_pool then
    invalid_arg "Info_model.generate: n_sites out of range";
  let rng = Rng.create (seed * 7919) in
  let sites =
    Array.init n_sites (fun i ->
        (* The final site is the teaching-only one, mirroring EDUKY. *)
        let teaching_only = i = n_sites - 1 in
        let name =
          if teaching_only then "EDUKY" else site_names_pool.(i)
        in
        make_site rng i name ~teaching_only)
  in
  { seed; sites }

let site t name =
  match Array.find_opt (fun s -> s.name = name) t.sites with
  | Some s -> s
  | None -> raise Not_found

let site_names t = Array.to_list (Array.map (fun s -> s.name) t.sites)

let dedicated_nics s =
  List.fold_left (fun acc w -> acc + w.dedicated_nics) 0 s.workers

let profilable_sites t =
  Array.to_list t.sites
  |> List.filter (fun s -> (not s.teaching_only) && dedicated_nics s > 0)

let total_ports s = s.uplinks + s.downlinks

let fpga_count s =
  List.fold_left (fun acc w -> acc + if w.has_fpga then 1 else 0) 0 s.workers

let pp_site ppf s =
  Format.fprintf ppf "%s: %d uplinks, %d downlinks, %d workers, %d dedicated NICs, %d FPGAs, %a/port%s"
    s.name s.uplinks s.downlinks (List.length s.workers) (dedicated_nics s)
    (fpga_count s) Units.pp_rate s.line_rate
    (if s.teaching_only then " (teaching only)" else "")
