(** The testbed information model.

    FABRIC publishes its topology through an information model (similar
    to Google's MALT); Patchwork's coordinator reads it to decide what
    can be profiled where.  This module generates a deterministic
    synthetic federation from a seed: around 30 sites with realistic
    inventories (a few uplinks, many downlinks, a handful of dedicated
    NICs, occasionally FPGA cards), matching the distributions the paper
    reports in Section 5. *)

type nic_kind = Shared_connectx | Dedicated_connectx | Alveo_fpga

type worker = {
  worker_name : string;
  cores : int;
  ram_gb : int;
  storage_gb : int;
  dedicated_nics : int;  (** dual-port ConnectX cards for exclusive use *)
  has_fpga : bool;
}

type site = {
  name : string;
  index : int;
  uplinks : int;  (** ports connected to other sites' switches *)
  downlinks : int;  (** ports connected to this site's servers *)
  workers : worker list;
  line_rate : float;  (** per-port capacity, bits per second *)
  teaching_only : bool;
      (** restricted for teaching (like EDUKY); no dedicated NICs, so
          Patchwork skips it *)
}

type t = { seed : int; sites : site array }

val generate : ?n_sites:int -> seed:int -> unit -> t
(** Deterministic synthetic federation; default 30 sites. *)

val site : t -> string -> site
(** Lookup by name; raises [Not_found]. *)

val site_names : t -> string list

val profilable_sites : t -> site list
(** Sites Patchwork can run on: not teaching-only and at least one
    dedicated NIC. *)

val total_ports : site -> int
(** Uplinks + downlinks. *)

val dedicated_nics : site -> int
(** Total dedicated NICs across the site's workers. *)

val fpga_count : site -> int

val pp_site : Format.formatter -> site -> unit
