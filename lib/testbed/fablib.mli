(** The testbed as seen by a user — a facade over the information model,
    per-site switches, allocator and telemetry, mirroring the FABRIC
    APIs (FABlib + MFlib) that Patchwork is written against.

    Port numbering convention at each site: ports [0 .. uplinks-1] are
    uplinks to other sites; ports [uplinks .. total-1] are downlinks to
    the site's servers. *)

type t

val create : ?n_sites:int -> seed:int -> Simcore.Engine.t -> t
(** Instantiate a federation: generates the information model and one
    switch per site, wires up telemetry, and creates the allocator. *)

val engine : t -> Simcore.Engine.t
val model : t -> Info_model.t
val allocator : t -> Allocator.t
val telemetry : t -> Telemetry.t
val rng : t -> Netcore.Rng.t

val switch : t -> site:string -> Switch.t
(** The ToR switch of a site; raises [Not_found] for unknown sites. *)

val uplink_ports : t -> site:string -> int list
val downlink_ports : t -> site:string -> int list
val all_ports : t -> site:string -> int list

val start_telemetry : ?until:float -> t -> unit
(** Begin the 5-minute SNMP polling across all sites. *)
