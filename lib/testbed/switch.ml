type dir = Rx | Tx
type mirror_dirs = Rx_only | Tx_only | Both

type counters = {
  tx_bytes : float;
  rx_bytes : float;
  tx_frames : float;
  rx_frames : float;
  drops : float;
}

type attachment = {
  flow : int;
  port : int;
  dir : dir;
  byte_rate : float;
  frame_rate : float;
}

type port_state = {
  mutable tx_bytes_acc : float;
  mutable rx_bytes_acc : float;
  mutable tx_frames_acc : float;
  mutable rx_frames_acc : float;
  mutable drops_acc : float;
  mutable tx_byte_rate : float;
  mutable rx_byte_rate : float;
  mutable tx_frame_rate : float;
  mutable rx_frame_rate : float;
  (* Extra Tx load and drop rate induced by a mirror session whose
     destination is this port. *)
  mutable mirror_tx_byte_rate : float;
  mutable mirror_tx_frame_rate : float;
  mutable mirror_drop_rate : float;
  mutable last_update : float;
}

type mirror = { mirror_id : int; src_port : int; dirs : mirror_dirs; dst_port : int }

type t = {
  engine : Simcore.Engine.t;
  site_name : string;
  line_rate : float;
  ports : port_state array;
  mutable mirrors : mirror list;
  flows : (int, attachment list) Hashtbl.t;
  mutable next_mirror_id : int;
}

let create engine ~site_name ~ports ~line_rate =
  if ports <= 0 then invalid_arg "Switch.create: need at least one port";
  {
    engine;
    site_name;
    line_rate;
    ports =
      Array.init ports (fun _ ->
          {
            tx_bytes_acc = 0.0;
            rx_bytes_acc = 0.0;
            tx_frames_acc = 0.0;
            rx_frames_acc = 0.0;
            drops_acc = 0.0;
            tx_byte_rate = 0.0;
            rx_byte_rate = 0.0;
            tx_frame_rate = 0.0;
            rx_frame_rate = 0.0;
            mirror_tx_byte_rate = 0.0;
            mirror_tx_frame_rate = 0.0;
            mirror_drop_rate = 0.0;
            last_update = Simcore.Engine.now engine;
          });
    mirrors = [];
    flows = Hashtbl.create 64;
    next_mirror_id = 0;
  }

let site_name t = t.site_name
let port_count t = Array.length t.ports
let line_rate t = t.line_rate

let check_port t port =
  if port < 0 || port >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Switch: port %d out of range" port)

(* Bring a port's cumulative counters up to the current simulated time. *)
let refresh t port =
  let p = t.ports.(port) in
  let now = Simcore.Engine.now t.engine in
  let dt = now -. p.last_update in
  if dt > 0.0 then begin
    p.tx_bytes_acc <- p.tx_bytes_acc +. ((p.tx_byte_rate +. p.mirror_tx_byte_rate) *. dt);
    p.rx_bytes_acc <- p.rx_bytes_acc +. (p.rx_byte_rate *. dt);
    p.tx_frames_acc <- p.tx_frames_acc +. ((p.tx_frame_rate +. p.mirror_tx_frame_rate) *. dt);
    p.rx_frames_acc <- p.rx_frames_acc +. (p.rx_frame_rate *. dt);
    p.drops_acc <- p.drops_acc +. (p.mirror_drop_rate *. dt);
    p.last_update <- now
  end

let mirrored_channel_rates t m =
  let p = t.ports.(m.src_port) in
  let tx = (p.tx_byte_rate, p.tx_frame_rate) and rx = (p.rx_byte_rate, p.rx_frame_rate) in
  match m.dirs with
  | Rx_only -> rx
  | Tx_only -> tx
  | Both -> (fst tx +. fst rx, snd tx +. snd rx)

(* Recompute the mirror-induced load on a session's destination port.
   Called whenever attachments or sessions change. *)
let recompute_mirror t m =
  refresh t m.dst_port;
  let byte_rate, frame_rate = mirrored_channel_rates t m in
  (* line_rate is bits/s; channel rates are bytes/s. *)
  let line_bytes = t.line_rate /. 8.0 in
  let dst = t.ports.(m.dst_port) in
  if byte_rate <= line_bytes then begin
    dst.mirror_tx_byte_rate <- byte_rate;
    dst.mirror_tx_frame_rate <- frame_rate;
    dst.mirror_drop_rate <- 0.0
  end
  else begin
    let keep = line_bytes /. byte_rate in
    dst.mirror_tx_byte_rate <- line_bytes;
    dst.mirror_tx_frame_rate <- frame_rate *. keep;
    dst.mirror_drop_rate <- frame_rate *. (1.0 -. keep)
  end

let recompute_mirrors_of_port t port =
  List.iter (fun m -> if m.src_port = port then recompute_mirror t m) t.mirrors

let attach_flow t ~port ~dir ~byte_rate ~frame_rate ~flow =
  check_port t port;
  if byte_rate < 0.0 || frame_rate < 0.0 then
    invalid_arg "Switch.attach_flow: negative rate";
  refresh t port;
  let p = t.ports.(port) in
  (match dir with
  | Tx ->
    p.tx_byte_rate <- p.tx_byte_rate +. byte_rate;
    p.tx_frame_rate <- p.tx_frame_rate +. frame_rate
  | Rx ->
    p.rx_byte_rate <- p.rx_byte_rate +. byte_rate;
    p.rx_frame_rate <- p.rx_frame_rate +. frame_rate);
  let att = { flow; port; dir; byte_rate; frame_rate } in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.flows flow) in
  Hashtbl.replace t.flows flow (att :: existing);
  recompute_mirrors_of_port t port

let detach_flow t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some atts ->
    Hashtbl.remove t.flows flow;
    List.iter
      (fun att ->
        refresh t att.port;
        let p = t.ports.(att.port) in
        (match att.dir with
        | Tx ->
          p.tx_byte_rate <- Float.max 0.0 (p.tx_byte_rate -. att.byte_rate);
          p.tx_frame_rate <- Float.max 0.0 (p.tx_frame_rate -. att.frame_rate)
        | Rx ->
          p.rx_byte_rate <- Float.max 0.0 (p.rx_byte_rate -. att.byte_rate);
          p.rx_frame_rate <- Float.max 0.0 (p.rx_frame_rate -. att.frame_rate));
        recompute_mirrors_of_port t att.port)
      atts

let attachments t ~port =
  check_port t port;
  Hashtbl.fold
    (fun _ atts acc -> List.filter (fun a -> a.port = port) atts @ acc)
    t.flows []

let read_counters t ~port =
  check_port t port;
  refresh t port;
  let p = t.ports.(port) in
  {
    tx_bytes = p.tx_bytes_acc;
    rx_bytes = p.rx_bytes_acc;
    tx_frames = p.tx_frames_acc;
    rx_frames = p.rx_frames_acc;
    drops = p.drops_acc;
  }

let channel_rate t ~port ~dir =
  check_port t port;
  let p = t.ports.(port) in
  match dir with
  | Tx -> p.tx_byte_rate +. p.mirror_tx_byte_rate
  | Rx -> p.rx_byte_rate

let find_mirror t id =
  match List.find_opt (fun m -> m.mirror_id = id) t.mirrors with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Switch: no mirror session %d" id)

let add_mirror t ~src_port ~dirs ~dst_port =
  if src_port < 0 || src_port >= Array.length t.ports then
    Error (Printf.sprintf "source port %d out of range" src_port)
  else if dst_port < 0 || dst_port >= Array.length t.ports then
    Error (Printf.sprintf "destination port %d out of range" dst_port)
  else if src_port = dst_port then Error "source and destination ports coincide"
  else if List.exists (fun m -> m.src_port = src_port) t.mirrors then
    Error (Printf.sprintf "port %d is already mirrored" src_port)
  else if List.exists (fun m -> m.dst_port = dst_port) t.mirrors then
    Error (Printf.sprintf "port %d is already a mirror destination" dst_port)
  else begin
    let id = t.next_mirror_id in
    t.next_mirror_id <- id + 1;
    let m = { mirror_id = id; src_port; dirs; dst_port } in
    t.mirrors <- m :: t.mirrors;
    recompute_mirror t m;
    Ok id
  end

let remove_mirror t id =
  match List.find_opt (fun m -> m.mirror_id = id) t.mirrors with
  | None -> ()
  | Some m ->
    refresh t m.dst_port;
    t.mirrors <- List.filter (fun m' -> m'.mirror_id <> id) t.mirrors;
    let dst = t.ports.(m.dst_port) in
    dst.mirror_tx_byte_rate <- 0.0;
    dst.mirror_tx_frame_rate <- 0.0;
    dst.mirror_drop_rate <- 0.0

let mirror_count t = List.length t.mirrors

let mirrored_rate t id =
  let m = find_mirror t id in
  fst (mirrored_channel_rates t m)

let mirror_drop_fraction t id =
  let m = find_mirror t id in
  let byte_rate, _ = mirrored_channel_rates t m in
  let line_bytes = t.line_rate /. 8.0 in
  if byte_rate <= line_bytes then 0.0 else 1.0 -. (line_bytes /. byte_rate)

let mirrored_attachments t id =
  let m = find_mirror t id in
  let wanted (d : dir) =
    match m.dirs with Rx_only -> d = Rx | Tx_only -> d = Tx | Both -> true
  in
  List.filter (fun a -> wanted a.dir) (attachments t ~port:m.src_port)
