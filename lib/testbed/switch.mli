(** Top-of-rack switch model.

    Each FABRIC site has one ToR switch.  The model tracks, per port and
    per direction, cumulative SNMP-style counters (bytes, frames) that
    are updated lazily from the set of currently attached traffic flows,
    plus port-mirroring sessions.

    Port mirroring follows the paper's semantics: a session clones the
    Rx and/or Tx channel of a source port onto the {e Tx} channel of a
    destination port.  If the combined mirrored rate exceeds the
    destination's line rate, the excess is dropped at the switch before
    transmission — exactly the incomplete-sample hazard that Patchwork
    must detect (requirement R3). *)

type t

type dir = Rx | Tx
(** Direction from the switch's point of view: [Rx] is traffic arriving
    at the port, [Tx] is traffic the switch transmits out of it. *)

type mirror_dirs = Rx_only | Tx_only | Both

type counters = {
  tx_bytes : float;
  rx_bytes : float;
  tx_frames : float;
  rx_frames : float;
  drops : float;  (** frames dropped at this port's egress queue *)
}

type attachment = {
  flow : int;  (** the flow handle this attachment belongs to *)
  port : int;
  dir : dir;
  byte_rate : float;  (** bytes per second crossing the channel *)
  frame_rate : float;  (** frames per second *)
}

val create : Simcore.Engine.t -> site_name:string -> ports:int -> line_rate:float -> t

val site_name : t -> string
val port_count : t -> int
val line_rate : t -> float

(** {2 Traffic attachment} *)

val attach_flow :
  t -> port:int -> dir:dir -> byte_rate:float -> frame_rate:float -> flow:int -> unit
(** Register a flow's contribution to one channel of one port.  The same
    [flow] handle may be attached to several (port, dir) channels. *)

val detach_flow : t -> flow:int -> unit
(** Remove every attachment of a flow handle. *)

val attachments : t -> port:int -> attachment list
(** Currently attached contributions on a port (both directions). *)

(** {2 Counters (SNMP view)} *)

val read_counters : t -> port:int -> counters
(** Cumulative counters as of the engine's current time. *)

val channel_rate : t -> port:int -> dir:dir -> float
(** Instantaneous byte rate on one channel (bytes per second). *)

(** {2 Port mirroring} *)

val add_mirror : t -> src_port:int -> dirs:mirror_dirs -> dst_port:int -> (int, string) result
(** Start a mirror session; returns its id.  Fails if either port is out
    of range, ports coincide, or the source is already mirrored (a port
    can be mirrored by only one session at a time). *)

val remove_mirror : t -> int -> unit
val mirror_count : t -> int

val mirrored_rate : t -> int -> float
(** Combined byte rate (bytes/s) the session is trying to clone. *)

val mirror_drop_fraction : t -> int -> float
(** Fraction of mirrored frames currently dropped because the combined
    mirrored rate exceeds the destination port's line rate: [0] when
    healthy, approaching 1 under heavy overload. *)

val mirrored_attachments : t -> int -> attachment list
(** Attachments on the mirrored channels of a session's source port. *)
