type t = {
  engine : Simcore.Engine.t;
  store : Simcore.Timeseries.t;
  mutable switches : Switch.t list;
  (* Last polled cumulative byte counters per (site, port), used to turn
     counters into per-interval rates. *)
  last_poll : (string * int, float * float * float) Hashtbl.t;
}

let poll_period = 300.0

let create engine =
  { engine; store = Simcore.Timeseries.create (); switches = []; last_poll = Hashtbl.create 256 }

let register_switch t sw = t.switches <- sw :: t.switches

let key site port metric = Printf.sprintf "%s/p%d/%s" site port metric

let poll_switch t sw =
  let now = Simcore.Engine.now t.engine in
  let site = Switch.site_name sw in
  for port = 0 to Switch.port_count sw - 1 do
    let c = Switch.read_counters sw ~port in
    Simcore.Timeseries.append t.store ~key:(key site port "tx_bytes") ~time:now c.Switch.tx_bytes;
    Simcore.Timeseries.append t.store ~key:(key site port "rx_bytes") ~time:now c.Switch.rx_bytes;
    Simcore.Timeseries.append t.store ~key:(key site port "drops") ~time:now c.Switch.drops;
    (match Hashtbl.find_opt t.last_poll (site, port) with
    | Some (prev_time, prev_tx, prev_rx) when now > prev_time ->
      let dt = now -. prev_time in
      Simcore.Timeseries.append t.store ~key:(key site port "tx_rate") ~time:now
        (Float.max 0.0 ((c.Switch.tx_bytes -. prev_tx) /. dt));
      Simcore.Timeseries.append t.store ~key:(key site port "rx_rate") ~time:now
        (Float.max 0.0 ((c.Switch.rx_bytes -. prev_rx) /. dt))
    | Some _ | None -> ());
    Hashtbl.replace t.last_poll (site, port) (now, c.Switch.tx_bytes, c.Switch.rx_bytes)
  done

let poll_now t = List.iter (poll_switch t) t.switches

let start ?until t =
  Simcore.Engine.every t.engine ~period:poll_period ?until (fun _ -> poll_now t)

let store t = t.store

let avg_samples samples =
  match samples with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 samples
    /. float_of_int (List.length samples)

let port_avg_rate t ~site ~port ~window ~at =
  let read metric =
    Simcore.Timeseries.range t.store ~key:(key site port metric)
      ~start_time:(at -. window) ~end_time:at
  in
  avg_samples (read "tx_rate") +. avg_samples (read "rx_rate")

let busiest_port t ~site ~candidates ~window ~at =
  let rated =
    List.map (fun p -> (p, port_avg_rate t ~site ~port:p ~window ~at)) candidates
  in
  match List.filter (fun (_, r) -> r > 0.0) rated with
  | [] -> None
  | active ->
    let best =
      List.fold_left (fun (bp, br) (p, r) -> if r > br then (p, r) else (bp, br))
        (List.hd active) (List.tl active)
    in
    Some (fst best)

let channel_rates_at t ~site ~port ~at =
  let latest metric =
    match
      Simcore.Timeseries.range t.store ~key:(key site port metric) ~start_time:0.0
        ~end_time:at
    with
    | [] -> None
    | samples ->
      let _, v = List.nth samples (List.length samples - 1) in
      Some v
  in
  match (latest "tx_rate", latest "rx_rate") with
  | Some tx, Some rx -> Some (tx, rx)
  | _ -> None

(* Bridge to the run-metrics registry: re-export the most recent SNMP
   sample of every registered switch port as labelled gauges, so the
   testbed's telemetry and Patchwork's own pipeline metrics surface
   through one exposition endpoint. *)
let export_metrics ?(registry = Obs.Registry.default) t =
  if Obs.Registry.enabled () then
    List.iter
      (fun sw ->
        let site = Switch.site_name sw in
        for port = 0 to Switch.port_count sw - 1 do
          let labels = [ ("site", site); ("port", string_of_int port) ] in
          let set name metric =
            match Simcore.Timeseries.last t.store ~key:(key site port metric) with
            | None -> ()
            | Some (_, v) ->
              Obs.Registry.set
                (Obs.Registry.gauge registry name
                   ~help:("Latest SNMP " ^ metric ^ " sample") ~labels)
                v
          in
          set "testbed_port_tx_rate_bytes" "tx_rate";
          set "testbed_port_rx_rate_bytes" "rx_rate";
          set "testbed_port_tx_bytes" "tx_bytes";
          set "testbed_port_rx_bytes" "rx_bytes";
          set "testbed_port_drops" "drops"
        done)
      t.switches

let weekly_rate_sums t ~weeks =
  let sums = Array.make weeks 0.0 in
  List.iter
    (fun key ->
      if
        String.length key > 8
        && String.sub key (String.length key - 7) 7 = "tx_rate"
      then
        Simcore.Timeseries.fold t.store ~key ~init:() ~f:(fun () time value ->
            let w = Netcore.Timebase.week_of time in
            if w >= 0 && w < weeks then sums.(w) <- sums.(w) +. value))
    (Simcore.Timeseries.keys t.store);
  sums
