type t = { hi : int64; lo : int64 }

let make hi lo = { hi; lo }
let halves t = (t.hi, t.lo)

let group t i =
  (* Group 0 is the most significant 16 bits. *)
  let half, shift =
    if i < 4 then (t.hi, (3 - i) * 16) else (t.lo, (7 - i) * 16)
  in
  Int64.to_int (Int64.logand (Int64.shift_right_logical half shift) 0xFFFFL)

let of_groups groups =
  if Array.length groups <> 8 then invalid_arg "Ipv6_addr.of_groups";
  let fold start =
    let acc = ref 0L in
    for i = start to start + 3 do
      if groups.(i) < 0 || groups.(i) > 0xFFFF then
        invalid_arg "Ipv6_addr: group out of range";
      acc := Int64.logor (Int64.shift_left !acc 16) (Int64.of_int groups.(i))
    done;
    !acc
  in
  { hi = fold 0; lo = fold 4 }

let of_string s =
  let expand s =
    match String.index_opt s ':' with
    | None -> invalid_arg ("Ipv6_addr.of_string: " ^ s)
    | Some _ ->
      let parts = String.split_on_char ':' s in
      (* "::" produces empty strings in the split output. *)
      let rec split_gap before = function
        | [] -> (List.rev before, None)
        | "" :: rest -> (List.rev before, Some (List.filter (fun x -> x <> "") rest))
        | x :: rest -> split_gap (x :: before) rest
      in
      let head, tail = split_gap [] parts in
      let head = List.filter (fun x -> x <> "") head in
      (match tail with
      | None ->
        if List.length head <> 8 then invalid_arg ("Ipv6_addr.of_string: " ^ s);
        head
      | Some tail ->
        let missing = 8 - List.length head - List.length tail in
        if missing < 0 then invalid_arg ("Ipv6_addr.of_string: " ^ s);
        head @ List.init missing (fun _ -> "0") @ tail)
  in
  let groups = expand s in
  let parse g =
    match int_of_string_opt ("0x" ^ g) with
    | Some v when v >= 0 && v <= 0xFFFF -> v
    | _ -> invalid_arg ("Ipv6_addr.of_string: bad group " ^ g)
  in
  of_groups (Array.of_list (List.map parse groups))

let to_string t =
  let groups = Array.init 8 (group t) in
  (* Find the longest run of zero groups (length >= 2) to compress. *)
  let best_start = ref (-1) and best_len = ref 0 in
  let i = ref 0 in
  while !i < 8 do
    if groups.(!i) = 0 then begin
      let j = ref !i in
      while !j < 8 && groups.(!j) = 0 do incr j done;
      if !j - !i > !best_len then begin
        best_len := !j - !i;
        best_start := !i
      end;
      i := !j
    end
    else incr i
  done;
  if !best_len < 2 then
    String.concat ":" (Array.to_list (Array.map (Printf.sprintf "%x") groups))
  else begin
    let fmt lo hi =
      String.concat ":"
        (List.init (hi - lo) (fun k -> Printf.sprintf "%x" groups.(lo + k)))
    in
    fmt 0 !best_start ^ "::" ^ fmt (!best_start + !best_len) 8
  end

let random_in rng ~prefix ~prefix_len =
  if prefix_len < 0 || prefix_len > 128 then invalid_arg "Ipv6_addr.random_in";
  let rand_hi = Rng.bits64 rng and rand_lo = Rng.bits64 rng in
  let mask bits =
    if bits <= 0 then 0L
    else if bits >= 64 then -1L
    else Int64.shift_left (-1L) (64 - bits)
  in
  let hi_mask = mask prefix_len and lo_mask = mask (prefix_len - 64) in
  {
    hi = Int64.logor (Int64.logand prefix.hi hi_mask) (Int64.logand rand_hi (Int64.lognot hi_mask));
    lo = Int64.logor (Int64.logand prefix.lo lo_mask) (Int64.logand rand_lo (Int64.lognot lo_mask));
  }

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  (* Unsigned comparison of halves. *)
  let cmp_u x y = Int64.unsigned_compare x y in
  match cmp_u a.hi b.hi with 0 -> cmp_u a.lo b.lo | c -> c

let hash t = (Int64.to_int t.hi lxor Int64.to_int t.lo) land max_int
let pp ppf t = Format.pp_print_string ppf (to_string t)
