(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is SplitMix64 (Steele et al., OOPSLA 2014): fast, passes
    BigCrush, and supports cheap stream splitting, which lets each
    simulated component own an independent stream derived from its
    parent. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t].  Used to give sub-components their own streams. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal sample (Box-Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal sample: [exp (gaussian mu sigma)]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto sample with minimum value [scale] and tail index [shape]. *)

val poisson : t -> mean:float -> int
(** Poisson-distributed count (Knuth's method for small means, normal
    approximation above 64). *)

val choice : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (float * 'a) list -> 'a
(** [weighted t items] picks an element with probability proportional
    to its weight.  Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
