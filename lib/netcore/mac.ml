type t = int64

let mask48 = 0xFFFF_FFFF_FFFFL

let of_int64 v = Int64.logand v mask48
let to_int64 t = t

let of_octets octs =
  if Array.length octs <> 6 then invalid_arg "Mac.of_octets: need 6 octets";
  Array.fold_left
    (fun acc o ->
      if o < 0 || o > 255 then invalid_arg "Mac.of_octets: octet out of range";
      Int64.logor (Int64.shift_left acc 8) (Int64.of_int o))
    0L octs

let to_octets t =
  Array.init 6 (fun i ->
      Int64.to_int (Int64.logand (Int64.shift_right_logical t ((5 - i) * 8)) 0xFFL))

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
    let parse x =
      match int_of_string_opt ("0x" ^ x) with
      | Some v when v >= 0 && v <= 255 -> v
      | _ -> invalid_arg ("Mac.of_string: bad octet " ^ x)
    in
    of_octets (Array.of_list (List.map parse [ a; b; c; d; e; f ]))
  | _ -> invalid_arg ("Mac.of_string: " ^ s)

let to_string t =
  let o = to_octets t in
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" o.(0) o.(1) o.(2) o.(3) o.(4) o.(5)

let broadcast = mask48
let zero = 0L

let random rng =
  let raw = Int64.logand (Rng.bits64 rng) mask48 in
  (* Set locally-administered, clear multicast. *)
  let first = Int64.logand (Int64.shift_right_logical raw 40) 0xFFL in
  let first = Int64.logor (Int64.logand first 0xFCL) 2L in
  Int64.logor (Int64.shift_left first 40) (Int64.logand raw 0xFF_FFFF_FFFFL)

let is_multicast t = Int64.logand (Int64.shift_right_logical t 40) 1L = 1L
let equal = Int64.equal
let compare = Int64.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)
