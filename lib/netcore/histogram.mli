(** Counting histograms.

    Two flavours are provided: histograms over explicit, caller-supplied
    bin edges (used for frame-size breakdowns such as the paper's
    Fig. 15) and base-2 logarithmic histograms (used for the
    bpftrace-style [sys_writev] latency profiles of Fig. 14). *)

type t
(** A histogram with fixed bin edges. *)

val create : float array -> t
(** [create edges] makes a histogram whose bins are
    [(-inf, e0), [e0, e1), ..., [en, +inf)].  Edges must be strictly
    increasing and non-empty. *)

val add : t -> ?count:int -> float -> unit
(** Add [count] (default 1) observations of a value. *)

val addf : t -> count:float -> float -> unit
(** Add a fractionally weighted observation.  Sampling weights
    (1/materialized-fraction per record of a thinned capture) are floats;
    accumulating them exactly — rather than rounding each record's weight
    to an int — keeps size histograms consistent with the flow accounting,
    which has always used exact float weights.  Raises [Invalid_argument]
    on a negative count. *)

val counts : t -> int array
(** Per-bin counts rounded to the nearest integer, including the two
    open-ended outer bins; length is [Array.length edges + 1].  Exact
    whenever only integer counts were added. *)

val fcounts : t -> float array
(** Per-bin counts without rounding (the authoritative values when
    {!addf} was used). *)

val total : t -> int
val ftotal : t -> float
val edges : t -> float array

val bin_label : t -> int -> string
(** Human-readable label for bin [i], e.g. ["[64, 128)"]. *)

val fractions : t -> float array
(** Per-bin fraction of the total (all zeros if the total is zero). *)

val merge : t -> t -> t
(** Sum of two histograms over identical edges.  Raises
    [Invalid_argument] if the edges differ. *)

module Log2 : sig
  type t
  (** Histogram with bins [[2^k, 2^(k+1))] over non-negative values. *)

  val create : unit -> t
  val add : t -> ?count:int -> float -> unit

  val buckets : t -> (int * int) list
  (** [(k, count)] for every non-empty bucket, ascending in [k]; values
      in bucket [k] satisfy [2^k <= v < 2^(k+1)].  Values below 1 land
      in bucket 0. *)

  val total : t -> int

  val upper_bound_sum : t -> min_exponent:int -> float
  (** Sum of [count * 2^(k+1)] over buckets with [k >= min_exponent].
      This mirrors the paper's Fig. 14 methodology: each latency is
      accounted at its bucket's upper bound, and the common (fast) cases
      below a cut-off are excluded so that tail stalls dominate. *)

  val pp : Format.formatter -> t -> unit
end
