type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Gaussian of float * float
  | Lognormal of float * float
  | Pareto of float * float
  | Empirical of (float * float) array
  | Mixture of (float * t) list
  | Shifted of float * t
  | Clamped of float * float * t

let rec sample d rng =
  match d with
  | Constant v -> v
  | Uniform (lo, hi) -> lo +. (Rng.float rng *. (hi -. lo))
  | Exponential mean -> Rng.exponential rng ~mean
  | Gaussian (mu, sigma) -> Rng.gaussian rng ~mu ~sigma
  | Lognormal (mu, sigma) -> Rng.lognormal rng ~mu ~sigma
  | Pareto (shape, scale) -> Rng.pareto rng ~shape ~scale
  | Empirical pairs ->
    let items = Array.to_list (Array.map (fun (w, v) -> (w, v)) pairs) in
    Rng.weighted rng items
  | Mixture parts ->
    let inner = Rng.weighted rng parts in
    sample inner rng
  | Shifted (offset, inner) -> offset +. sample inner rng
  | Clamped (lo, hi, inner) -> Float.max lo (Float.min hi (sample inner rng))

let sample_int d rng = int_of_float (Float.round (sample d rng))

let rec mean = function
  | Constant v -> Some v
  | Uniform (lo, hi) -> Some ((lo +. hi) /. 2.0)
  | Exponential m -> Some m
  | Gaussian (mu, _) -> Some mu
  | Lognormal (mu, sigma) -> Some (exp (mu +. (sigma *. sigma /. 2.0)))
  | Pareto (shape, scale) ->
    if shape > 1.0 then Some (shape *. scale /. (shape -. 1.0)) else None
  | Empirical pairs ->
    let total_w = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
    if total_w <= 0.0 then None
    else
      Some
        (Array.fold_left (fun acc (w, v) -> acc +. (w *. v)) 0.0 pairs /. total_w)
  | Mixture parts ->
    let total_w = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
    if total_w <= 0.0 then None
    else
      List.fold_left
        (fun acc (w, d) ->
          match (acc, mean d) with
          | Some a, Some m -> Some (a +. (w /. total_w *. m))
          | _ -> None)
        (Some 0.0) parts
  | Shifted (offset, inner) -> Option.map (fun m -> m +. offset) (mean inner)
  | Clamped _ -> None

let mean_estimate d n rng =
  if n <= 0 then invalid_arg "Dist.mean_estimate: n must be positive";
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. sample d rng
  done;
  !total /. float_of_int n

module Zipf = struct
  type sampler = { cdf : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for rank = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int rank ** s));
      cdf.(rank - 1) <- !acc
    done;
    let total = !acc in
    Array.iteri (fun i v -> cdf.(i) <- v /. total) cdf;
    { cdf }

  let sample t rng =
    let u = Rng.float rng in
    (* Binary search for the first index with cdf >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1
end

module Summary = struct
  type stats = {
    count : int;
    mean : float;
    stddev : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then invalid_arg "Summary.percentile: empty array";
    let idx = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.of_int (int_of_float idx)) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let frac = idx -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

  let of_array values =
    let n = Array.length values in
    if n = 0 then invalid_arg "Summary.of_array: empty array";
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let total = Array.fold_left ( +. ) 0.0 sorted in
    let mean = total /. float_of_int n in
    let var =
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 sorted
      /. float_of_int n
    in
    {
      count = n;
      mean;
      stddev = sqrt var;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile sorted 50.0;
      p90 = percentile sorted 90.0;
      p99 = percentile sorted 99.0;
    }

  let pp ppf s =
    Format.fprintf ppf
      "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
      s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
end
