type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: mixes the incremented state into an output word. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let float t =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for
     bounds far below 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t < p

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let pareto t ~shape ~scale =
  let u = 1.0 -. float t in
  scale /. (u ** (1.0 /. shape))

let poisson t ~mean =
  if mean < 0.0 then invalid_arg "Rng.poisson: negative mean";
  if mean = 0.0 then 0
  else if mean > 64.0 then
    (* Normal approximation with continuity correction. *)
    max 0 (int_of_float (Float.round (gaussian t ~mu:mean ~sigma:(sqrt mean))))
  else begin
    let limit = exp (-.mean) in
    let rec go k p =
      let p = p *. float t in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.0
  end

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let weighted t items =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.weighted: weights must sum to > 0";
  let target = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest ->
      let acc = acc +. w in
      if target < acc then x else pick acc rest
  in
  pick 0.0 items

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
