(** The Internet checksum (RFC 1071), used by IPv4, TCP, UDP and
    ICMP. *)

val ones_complement_sum : ?initial:int -> bytes -> pos:int -> len:int -> int
(** 16-bit one's-complement sum of a byte range (odd trailing byte is
    padded with zero, as per the RFC). *)

val finish : int -> int
(** One's-complement of a running sum, folded to 16 bits. *)

val of_bytes : bytes -> int
(** Checksum of a whole buffer. *)

val verify : bytes -> bool
(** [verify b] is [true] when the buffer (with its embedded checksum
    field) sums to [0xFFFF], i.e. the checksum is valid. *)
