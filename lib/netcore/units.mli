(** Unit conversions and pretty-printing for rates and sizes.

    Throughout the code base, rates are bits per second ([float]) and
    sizes are bytes ([int] or [float]); this module keeps the
    conversions in one place. *)

val gbps : float -> float
(** [gbps 100.0] is [100e9] bits per second. *)

val mbps : float -> float
val tbps : float -> float

val bps_to_gbps : float -> float
val bps_to_tbps : float -> float

val bytes_per_sec_of_bps : float -> float
(** Bits-per-second to bytes-per-second. *)

val gib : float -> float
(** Gibibytes to bytes. *)

val mib : float -> float
val kib : float -> float

val pps_of_bps : float -> frame_bytes:int -> float
(** Packets per second carried by a bit rate, accounting for Ethernet
    per-frame overhead (preamble + IFG + FCS = 24 bytes) on the wire. *)

val bps_of_pps : float -> frame_bytes:int -> float
(** Inverse of {!pps_of_bps}. *)

val ethernet_overhead_bytes : int
(** Preamble (8) + inter-frame gap (12) + FCS (4). *)

val parse_duration : string -> (float, string) result
(** Parse a duration to seconds: a positive number with an optional
    [s]/[m]/[h]/[d]/[w] suffix (["90s"], ["15m"], ["2h"], ["7d"],
    ["1w"]; no suffix means seconds).  The CLI syntax for telemetry
    retention and downsample resolution. *)

val pp_rate : Format.formatter -> float -> unit
(** Prints a bit rate with an adaptive unit, e.g. ["3.97 Tbps"]. *)

val pp_bytes : Format.formatter -> float -> unit
(** Prints a byte count with an adaptive unit, e.g. ["1.5 GiB"]. *)
