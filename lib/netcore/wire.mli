(** Big-endian (network byte order) binary readers and writers.

    {!Writer} is a growable buffer used when encoding frames; {!Reader}
    is a bounds-checked cursor over immutable bytes used by the
    dissectors. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u32_of_int : t -> int -> unit
  val u64 : t -> int64 -> unit
  val bytes : t -> bytes -> unit
  val string : t -> string -> unit
  val zeros : t -> int -> unit
  val contents : t -> bytes

  val patch_u16 : t -> pos:int -> int -> unit
  (** Overwrite a previously written 16-bit field (e.g. a length that is
      only known once the rest of the packet has been encoded). *)
end

module Reader : sig
  type t

  exception Truncated
  (** Raised on any read past the end of the buffer.  Dissectors catch
      this to mark a frame as truncated, which is normal for snapped
      captures. *)

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val u64 : t -> int64
  val take : t -> int -> bytes
  val skip : t -> int -> unit
  val peek_u8 : t -> int
  val peek_u16 : t -> int

  val peek_bytes : t -> int -> bytes
  (** Copy of the next [n] bytes without consuming them. *)

  val sub : t -> int -> t
  (** [sub t n] is a reader over the next [n] bytes, consuming them from
      [t]. *)
end
