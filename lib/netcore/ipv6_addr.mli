(** IPv6 addresses, stored as two 64-bit halves. *)

type t

val make : int64 -> int64 -> t
(** [make hi lo] from the high and low 64 bits. *)

val halves : t -> int64 * int64

val of_string : string -> t
(** Parses full or [::]-compressed colon-hex notation. *)

val to_string : t -> string
(** Canonical lower-case form with the longest zero run compressed. *)

val random_in : Rng.t -> prefix:t -> prefix_len:int -> t
(** A random address inside the given prefix (prefix length <= 64 keeps
    the low half fully random). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
