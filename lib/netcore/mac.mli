(** 48-bit Ethernet MAC addresses. *)

type t
(** An immutable MAC address. *)

val of_int64 : int64 -> t
(** Uses the low 48 bits. *)

val to_int64 : t -> int64

val of_octets : int array -> t
(** [of_octets [|a;b;c;d;e;f|]]; each octet must be in [0, 255]. *)

val to_octets : t -> int array

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"].  Raises [Invalid_argument] on bad
    syntax. *)

val to_string : t -> string
val broadcast : t
val zero : t

val random : Rng.t -> t
(** A random, locally-administered unicast address. *)

val is_multicast : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
