let ones_complement_sum ?(initial = 0) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum: bad range";
  let sum = ref initial in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be buf !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  (* Fold carries. *)
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  !sum

let finish sum =
  let folded = ref sum in
  while !folded > 0xFFFF do
    folded := (!folded land 0xFFFF) + (!folded lsr 16)
  done;
  lnot !folded land 0xFFFF

let of_bytes b = finish (ones_complement_sum b ~pos:0 ~len:(Bytes.length b))

let verify b =
  let sum = ones_complement_sum b ~pos:0 ~len:(Bytes.length b) in
  sum land 0xFFFF = 0xFFFF
