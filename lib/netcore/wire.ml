module Writer = struct
  type t = { mutable buf : bytes; mutable len : int }

  let create ?(capacity = 256) () = { buf = Bytes.create (max 16 capacity); len = 0 }

  let length t = t.len

  let ensure t extra =
    let needed = t.len + extra in
    if needed > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < needed do cap := !cap * 2 done;
      let grown = Bytes.create !cap in
      Bytes.blit t.buf 0 grown 0 t.len;
      t.buf <- grown
    end

  let u8 t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.chr (v land 0xFF));
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_be t.buf t.len (v land 0xFFFF);
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_be t.buf t.len v;
    t.len <- t.len + 4

  let u32_of_int t v = u32 t (Int32.of_int v)

  let u64 t v =
    ensure t 8;
    Bytes.set_int64_be t.buf t.len v;
    t.len <- t.len + 8

  let bytes t b =
    ensure t (Bytes.length b);
    Bytes.blit b 0 t.buf t.len (Bytes.length b);
    t.len <- t.len + Bytes.length b

  let string t s =
    ensure t (String.length s);
    Bytes.blit_string s 0 t.buf t.len (String.length s);
    t.len <- t.len + String.length s

  let zeros t n =
    ensure t n;
    Bytes.fill t.buf t.len n '\000';
    t.len <- t.len + n

  let contents t = Bytes.sub t.buf 0 t.len

  let patch_u16 t ~pos v =
    if pos < 0 || pos + 2 > t.len then invalid_arg "Writer.patch_u16: out of range";
    Bytes.set_uint16_be t.buf pos (v land 0xFFFF)
end

module Reader = struct
  type t = { buf : bytes; limit : int; mutable cursor : int }

  exception Truncated

  let of_bytes ?(pos = 0) ?len buf =
    let len = match len with Some l -> l | None -> Bytes.length buf - pos in
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then
      invalid_arg "Reader.of_bytes: bad bounds";
    { buf; limit = pos + len; cursor = pos }

  let pos t = t.cursor
  let remaining t = t.limit - t.cursor

  let need t n = if t.cursor + n > t.limit then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.unsafe_get t.buf t.cursor) in
    t.cursor <- t.cursor + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_be t.buf t.cursor in
    t.cursor <- t.cursor + 2;
    v

  let u32 t =
    need t 4;
    let v = Bytes.get_int32_be t.buf t.cursor in
    t.cursor <- t.cursor + 4;
    v

  let u64 t =
    need t 8;
    let v = Bytes.get_int64_be t.buf t.cursor in
    t.cursor <- t.cursor + 8;
    v

  let take t n =
    need t n;
    let b = Bytes.sub t.buf t.cursor n in
    t.cursor <- t.cursor + n;
    b

  let skip t n =
    need t n;
    t.cursor <- t.cursor + n

  let peek_u8 t =
    need t 1;
    Char.code (Bytes.unsafe_get t.buf t.cursor)

  let peek_u16 t =
    need t 2;
    Bytes.get_uint16_be t.buf t.cursor

  let peek_bytes t n =
    need t n;
    Bytes.sub t.buf t.cursor n

  let sub t n =
    need t n;
    let r = { buf = t.buf; limit = t.cursor + n; cursor = t.cursor } in
    t.cursor <- t.cursor + n;
    r
end
