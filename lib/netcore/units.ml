let gbps x = x *. 1e9
let mbps x = x *. 1e6
let tbps x = x *. 1e12
let bps_to_gbps x = x /. 1e9
let bps_to_tbps x = x /. 1e12
let bytes_per_sec_of_bps x = x /. 8.0
let gib x = x *. 1073741824.0
let mib x = x *. 1048576.0
let kib x = x *. 1024.0

let ethernet_overhead_bytes = 24

let pps_of_bps bps ~frame_bytes =
  if frame_bytes <= 0 then invalid_arg "Units.pps_of_bps: frame_bytes";
  bps /. (8.0 *. float_of_int (frame_bytes + ethernet_overhead_bytes))

let bps_of_pps pps ~frame_bytes =
  pps *. 8.0 *. float_of_int (frame_bytes + ethernet_overhead_bytes)

(* "90" / "90s" / "15m" / "2h" / "7d" / "1w" -> seconds.  The CLI's
   duration syntax for telemetry retention and downsample resolution. *)
let parse_duration s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then Error "empty duration"
  else begin
    let unit_scale, digits =
      match s.[n - 1] with
      | 's' -> (Some 1.0, String.sub s 0 (n - 1))
      | 'm' -> (Some 60.0, String.sub s 0 (n - 1))
      | 'h' -> (Some 3600.0, String.sub s 0 (n - 1))
      | 'd' -> (Some 86400.0, String.sub s 0 (n - 1))
      | 'w' -> (Some 604800.0, String.sub s 0 (n - 1))
      | '0' .. '9' | '.' -> (Some 1.0, s)
      | _ -> (None, s)
    in
    match unit_scale with
    | None -> Error (Printf.sprintf "bad duration unit in %S (use s/m/h/d/w)" s)
    | Some scale -> (
      match float_of_string_opt digits with
      | Some v when v > 0.0 && Float.is_finite v -> Ok (v *. scale)
      | _ -> Error (Printf.sprintf "bad duration %S (expected e.g. 90s, 15m, 2h, 7d)" s))
  end

let pp_rate ppf bps =
  let abs = Float.abs bps in
  if abs >= 1e12 then Format.fprintf ppf "%.2f Tbps" (bps /. 1e12)
  else if abs >= 1e9 then Format.fprintf ppf "%.2f Gbps" (bps /. 1e9)
  else if abs >= 1e6 then Format.fprintf ppf "%.2f Mbps" (bps /. 1e6)
  else if abs >= 1e3 then Format.fprintf ppf "%.2f Kbps" (bps /. 1e3)
  else Format.fprintf ppf "%.0f bps" bps

let pp_bytes ppf b =
  let abs = Float.abs b in
  if abs >= 1099511627776.0 then Format.fprintf ppf "%.2f TiB" (b /. 1099511627776.0)
  else if abs >= 1073741824.0 then Format.fprintf ppf "%.2f GiB" (b /. 1073741824.0)
  else if abs >= 1048576.0 then Format.fprintf ppf "%.2f MiB" (b /. 1048576.0)
  else if abs >= 1024.0 then Format.fprintf ppf "%.2f KiB" (b /. 1024.0)
  else Format.fprintf ppf "%.0f B" b
