let gbps x = x *. 1e9
let mbps x = x *. 1e6
let tbps x = x *. 1e12
let bps_to_gbps x = x /. 1e9
let bps_to_tbps x = x /. 1e12
let bytes_per_sec_of_bps x = x /. 8.0
let gib x = x *. 1073741824.0
let mib x = x *. 1048576.0
let kib x = x *. 1024.0

let ethernet_overhead_bytes = 24

let pps_of_bps bps ~frame_bytes =
  if frame_bytes <= 0 then invalid_arg "Units.pps_of_bps: frame_bytes";
  bps /. (8.0 *. float_of_int (frame_bytes + ethernet_overhead_bytes))

let bps_of_pps pps ~frame_bytes =
  pps *. 8.0 *. float_of_int (frame_bytes + ethernet_overhead_bytes)

let pp_rate ppf bps =
  let abs = Float.abs bps in
  if abs >= 1e12 then Format.fprintf ppf "%.2f Tbps" (bps /. 1e12)
  else if abs >= 1e9 then Format.fprintf ppf "%.2f Gbps" (bps /. 1e9)
  else if abs >= 1e6 then Format.fprintf ppf "%.2f Mbps" (bps /. 1e6)
  else if abs >= 1e3 then Format.fprintf ppf "%.2f Kbps" (bps /. 1e3)
  else Format.fprintf ppf "%.0f bps" bps

let pp_bytes ppf b =
  let abs = Float.abs b in
  if abs >= 1099511627776.0 then Format.fprintf ppf "%.2f TiB" (b /. 1099511627776.0)
  else if abs >= 1073741824.0 then Format.fprintf ppf "%.2f GiB" (b /. 1073741824.0)
  else if abs >= 1048576.0 then Format.fprintf ppf "%.2f MiB" (b /. 1048576.0)
  else if abs >= 1024.0 then Format.fprintf ppf "%.2f KiB" (b /. 1024.0)
  else Format.fprintf ppf "%.0f B" b
