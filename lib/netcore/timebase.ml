type t = float

let second = 1.0
let minute = 60.0
let hour = 3600.0
let day = 86400.0
let week = 604800.0

let of_days d = d *. day
let of_hours h = h *. hour
let of_minutes m = m *. minute

let day_of t = int_of_float (t /. day)
let week_of t = int_of_float (t /. week)
let hour_of_day t = Float.rem t day /. hour

let month_lengths = [| 31; 28; 31; 30; 31; 30; 31; 31; 30; 31; 30; 31 |]

let month_of_day doy =
  let doy = ((doy mod 365) + 365) mod 365 in
  let rec find m acc =
    if doy < acc + month_lengths.(m) then m else find (m + 1) (acc + month_lengths.(m))
  in
  find 0 0

let month_names =
  [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]

let month_name m =
  if m < 0 || m > 11 then invalid_arg "Timebase.month_name";
  month_names.(m)

let pp_duration ppf s =
  let abs = Float.abs s in
  if abs >= day then Format.fprintf ppf "%.1f d" (s /. day)
  else if abs >= hour then Format.fprintf ppf "%.1f h" (s /. hour)
  else if abs >= minute then Format.fprintf ppf "%.1f min" (s /. minute)
  else if abs >= 1.0 then Format.fprintf ppf "%.1f s" s
  else if abs >= 1e-3 then Format.fprintf ppf "%.2f ms" (s *. 1e3)
  else Format.fprintf ppf "%.1f us" (s *. 1e6)
