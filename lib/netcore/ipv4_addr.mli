(** IPv4 addresses. *)

type t
(** An immutable IPv4 address. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
val to_octets : t -> int * int * int * int

val of_string : string -> t
(** Parses dotted-quad notation; raises [Invalid_argument] otherwise. *)

val to_string : t -> string

val random_in : Rng.t -> prefix:t -> prefix_len:int -> t
(** A random host address inside the given prefix. *)

val in_prefix : t -> prefix:t -> prefix_len:int -> bool
val is_private : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
