(** Simulated-time helpers.

    Simulation time is a [float] count of seconds since the start of the
    simulated epoch (day 0, 00:00).  These helpers convert between that
    scale and the calendar-style units (days, weeks, months) used when
    reporting results, e.g. the weekly utilization series of Fig. 6. *)

type t = float
(** Seconds since the simulated epoch. *)

val second : float
val minute : float
val hour : float
val day : float
val week : float

val of_days : float -> t
val of_hours : float -> t
val of_minutes : float -> t

val day_of : t -> int
(** Zero-based day index. *)

val week_of : t -> int
(** Zero-based week index. *)

val hour_of_day : t -> float
(** Hours elapsed within the current day, in [0, 24). *)

val month_of_day : int -> int
(** Maps a zero-based day-of-year (0..364) to a month index 0..11 using
    standard month lengths of a non-leap year. *)

val month_name : int -> string

val pp_duration : Format.formatter -> float -> unit
(** Prints a duration with adaptive units, e.g. ["2.5 h"]. *)
