(** Statistical distributions and summary statistics.

    Distributions are first-class values so that workload models can be
    described declaratively (e.g. in {!Traffic.Workload}) and sampled
    with any {!Rng.t}. *)

type t =
  | Constant of float
  | Uniform of float * float  (** inclusive lower, exclusive upper *)
  | Exponential of float  (** mean *)
  | Gaussian of float * float  (** mu, sigma *)
  | Lognormal of float * float  (** mu, sigma of underlying normal *)
  | Pareto of float * float  (** shape, scale *)
  | Empirical of (float * float) array
      (** [(weight, value)] pairs; samples a value with probability
          proportional to its weight. *)
  | Mixture of (float * t) list  (** weighted mixture of distributions *)
  | Shifted of float * t  (** adds an offset to every sample *)
  | Clamped of float * float * t  (** clamps samples into [lo, hi] *)

val sample : t -> Rng.t -> float
(** Draw one sample. *)

val sample_int : t -> Rng.t -> int
(** Draw one sample rounded to the nearest integer. *)

val mean : t -> float option
(** Exact mean when it exists analytically ([None] for [Clamped] and for
    Pareto with shape <= 1). *)

val mean_estimate : t -> int -> Rng.t -> float
(** [mean_estimate d n rng] is the empirical mean of [n] samples. *)

module Zipf : sig
  type sampler

  val create : n:int -> s:float -> sampler
  (** Zipf distribution over ranks [1..n] with exponent [s]. *)

  val sample : sampler -> Rng.t -> int
  (** A rank in [1..n]; rank 1 is the most likely. *)
end

module Summary : sig
  type stats = {
    count : int;
    mean : float;
    stddev : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  val of_array : float array -> stats
  (** Summary statistics of a non-empty array (the array is sorted as a
      side effect of percentile computation on a copy). *)

  val percentile : float array -> float -> float
  (** [percentile sorted p] with [p] in [0,100]; the array must already
      be sorted ascending. *)

  val pp : Format.formatter -> stats -> unit
end
