(* Bin counts are kept as floats so that fractionally weighted
   observations (a thinned capture sample contributes 1/fraction
   "frames" per materialized record) accumulate exactly like every
   other weighted statistic, instead of being rounded per record.
   Integer counts below 2^53 stay exact, so the historical int API is
   unchanged for unweighted callers. *)
type t = { edges : float array; counts : float array }

let create edges =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Histogram.create: no edges";
  for i = 1 to n - 1 do
    if edges.(i) <= edges.(i - 1) then
      invalid_arg "Histogram.create: edges must be strictly increasing"
  done;
  { edges; counts = Array.make (n + 1) 0.0 }

(* Index of the bin containing [v]: 0 for v < e0, i for e(i-1) <= v < e(i),
   n for v >= e(n-1). *)
let bin_index t v =
  let n = Array.length t.edges in
  if v < t.edges.(0) then 0
  else if v >= t.edges.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* Invariant: edges.(lo) <= v < edges.(hi). *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v < t.edges.(mid) then hi := mid else lo := mid
    done;
    !lo + 1
  end

let addf t ~count v =
  if count < 0.0 then invalid_arg "Histogram.addf: negative count";
  let i = bin_index t v in
  t.counts.(i) <- t.counts.(i) +. count

let add t ?(count = 1) v = addf t ~count:(float_of_int count) v

let fcounts t = Array.copy t.counts
let ftotal t = Array.fold_left ( +. ) 0.0 t.counts
let counts t = Array.map (fun c -> int_of_float (Float.round c)) t.counts
let total t = int_of_float (Float.round (ftotal t))
let edges t = Array.copy t.edges

let bin_label t i =
  let n = Array.length t.edges in
  if i = 0 then Printf.sprintf "(-inf, %g)" t.edges.(0)
  else if i = n then Printf.sprintf "[%g, +inf)" t.edges.(n - 1)
  else Printf.sprintf "[%g, %g)" t.edges.(i - 1) t.edges.(i)

let fractions t =
  let tot = ftotal t in
  if tot = 0.0 then Array.make (Array.length t.counts) 0.0
  else Array.map (fun c -> c /. tot) t.counts

let merge a b =
  if a.edges <> b.edges then invalid_arg "Histogram.merge: different edges";
  {
    edges = a.edges;
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) +. b.counts.(i));
  }

module Log2 = struct
  type t = { mutable buckets : int array }

  let create () = { buckets = Array.make 32 0 }

  let ensure t k =
    if k >= Array.length t.buckets then begin
      let grown = Array.make (k + 8) 0 in
      Array.blit t.buckets 0 grown 0 (Array.length t.buckets);
      t.buckets <- grown
    end

  let exponent v = if v < 1.0 then 0 else int_of_float (Float.log2 v)

  let add t ?(count = 1) v =
    if v < 0.0 then invalid_arg "Histogram.Log2.add: negative value";
    let k = exponent v in
    ensure t k;
    t.buckets.(k) <- t.buckets.(k) + count

  let buckets t =
    let acc = ref [] in
    Array.iteri (fun k c -> if c > 0 then acc := (k, c) :: !acc) t.buckets;
    List.rev !acc

  let total t = Array.fold_left ( + ) 0 t.buckets

  let upper_bound_sum t ~min_exponent =
    let sum = ref 0.0 in
    Array.iteri
      (fun k c ->
        if k >= min_exponent && c > 0 then
          sum := !sum +. (float_of_int c *. (2.0 ** float_of_int (k + 1))))
      t.buckets;
    !sum

  let pp ppf t =
    List.iter
      (fun (k, c) ->
        Format.fprintf ppf "[2^%d, 2^%d): %d@." k (k + 1) c)
      (buckets t)
end
