type t = int32

let of_int32 v = v
let to_int32 t = t

let of_octets a b c d =
  let check x = if x < 0 || x > 255 then invalid_arg "Ipv4_addr.of_octets" in
  check a; check b; check c; check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let to_octets t =
  let v = Int32.to_int (Int32.logand t 0xFFFFFFl) in
  let a = Int32.to_int (Int32.shift_right_logical t 24) in
  (a, (v lsr 16) land 0xFF, (v lsr 8) land 0xFF, v land 0xFF)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    match
      (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
    with
    | Some a, Some b, Some c, Some d -> of_octets a b c d
    | _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s))
  | _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s)

(* Rendered once per decoded packet on the analysis fast path, so this
   writes digits directly instead of Printf (roughly 9x fewer words
   allocated per call). *)
let to_string t =
  let a, b, c, d = to_octets t in
  let buf = Bytes.create 15 in
  let pos = ref 0 in
  let put n =
    if n >= 100 then begin
      Bytes.unsafe_set buf !pos (Char.unsafe_chr (48 + (n / 100)));
      incr pos
    end;
    if n >= 10 then begin
      Bytes.unsafe_set buf !pos (Char.unsafe_chr (48 + (n / 10 mod 10)));
      incr pos
    end;
    Bytes.unsafe_set buf !pos (Char.unsafe_chr (48 + (n mod 10)));
    incr pos
  in
  let dot () =
    Bytes.unsafe_set buf !pos '.';
    incr pos
  in
  put a; dot (); put b; dot (); put c; dot (); put d;
  Bytes.sub_string buf 0 !pos

let mask_of_len len =
  if len < 0 || len > 32 then invalid_arg "Ipv4_addr: bad prefix length";
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let random_in rng ~prefix ~prefix_len =
  let mask = mask_of_len prefix_len in
  let host_bits = Int32.lognot mask in
  let raw = Int64.to_int32 (Rng.bits64 rng) in
  Int32.logor (Int32.logand prefix mask) (Int32.logand raw host_bits)

let in_prefix t ~prefix ~prefix_len =
  let mask = mask_of_len prefix_len in
  Int32.equal (Int32.logand t mask) (Int32.logand prefix mask)

let is_private t =
  in_prefix t ~prefix:(of_octets 10 0 0 0) ~prefix_len:8
  || in_prefix t ~prefix:(of_octets 172 16 0 0) ~prefix_len:12
  || in_prefix t ~prefix:(of_octets 192 168 0 0) ~prefix_len:16

let equal = Int32.equal
let compare = Int32.compare
let hash t = Int32.to_int t land max_int
let pp ppf t = Format.pp_print_string ppf (to_string t)
