(* §8.3 lessons from deployment: why capture and analysis are
   decoupled.  A 12-hour capture produces tens of gigabytes; analyzing
   it is dominated by the protocol dissectors and takes far longer than
   the capture itself — so holding testbed resources through analysis
   would multiply Patchwork's footprint. *)

let run () =
  Paper.section "§8.3 capture/analysis decoupling";
  (* Measure this machine's dissection throughput over realistic
     truncated frames. *)
  let rng = Netcore.Rng.create 3 in
  let frames =
    List.init 200 (fun _ ->
        let f = Frame_samples.random rng in
        Packet.Codec.encode f)
  in
  let n_iters = 2_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n_iters do
    List.iter (fun b -> ignore (Dissect.Dissector.dissect b)) frames
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let per_frame = elapsed /. float_of_int (n_iters * List.length frames) in
  let frames_per_second = 1.0 /. per_frame in
  Paper.row "dissection throughput on this host: %.2f us/frame (%.2e frames/s)"
    (per_frame *. 1e6) frames_per_second;
  (* A 12-hour capture at the paper's sampling settings on a port of
     average activity. *)
  let sample_seconds = 20.0 and interval = 300.0 in
  let capture_hours = 12.0 in
  let samples = capture_hours *. 3600.0 /. interval in
  let avg_pps = 1.0e5 in
  let frames_captured = samples *. sample_seconds *. avg_pps in
  let stored_bytes = frames_captured *. 216.0 in
  Paper.row "a %.0f h capture: %.2e frames, %.1f GB of pcap ('tens of gigabytes')"
    capture_hours frames_captured (stored_bytes /. 1e9);
  (* The paper's pipeline runs Wireshark's dissectors, roughly three
     orders of magnitude slower per frame than this library; that is
     where 'several days' comes from. *)
  let tshark_per_frame = 2e-3 in
  let ours = frames_captured /. frames_per_second in
  let theirs = frames_captured *. tshark_per_frame in
  Paper.row
    "dissecting those frames: %.1f min with this library vs %.1f days with Wireshark-speed dissectors (the paper's Digest)"
    (ours /. 60.0) (theirs /. 86400.0);
  Paper.row
    "paper: 'a capture lasting 12 hours can generate tens of gigabytes... analyzing this data can take several days'.";
  (* Lease accounting with and without decoupling, as slice-hours. *)
  Paper.section "§8.3 slice-hours per weekly occasion";
  let sites = 29.0 and instances = 2.0 in
  let coupled = sites *. instances *. (capture_hours +. (theirs /. 3600.0)) in
  let decoupled = sites *. instances *. capture_hours in
  Paper.row
    "decoupled: %.0f slice-hours per occasion; coupled to Wireshark-speed analysis: %.0f slice-hours (%.1fx)"
    decoupled coupled (coupled /. decoupled);
  Paper.row
    "frugality matters: 'otherwise, Patchwork would impede other experiments from starting - and thus have less to observe'."
