(* Fig 10: behavior of Patchwork on the federation over a 4-month
   period — per-day outcomes of all-experiment runs across the sites,
   including the September back-end incidents. *)

module Coordinator = Patchwork.Coordinator

type day_tally = {
  mutable ok : int;
  mutable degraded : int;
  mutable failed : int;
  mutable incomplete : int;
}

let fig10 ?(first_day = 152) ?(last_day = 272) ?(stride = 2) () =
  Paper.section "Fig 10: Patchwork behavior over a 4-month period";
  (* Fast profiling configuration: outcome classification does not need
     frame materialization. *)
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.samples_per_run = 3;
      max_frames_per_sample = 1;
    }
  in
  let outage_days = [ 253; 254; 258 ] in
  let tallies = ref [] in
  let total = { ok = 0; degraded = 0; failed = 0; incomplete = 0 } in
  let day = ref first_day in
  while !day <= last_day do
    let d = !day in
    let start_time = float_of_int d *. Netcore.Timebase.day in
    let _, fabric, driver =
      Paper.fresh_occasion ~occasion_seed:(1000 + d) ~start_time
    in
    Paper.apply_external_pressure fabric ~at:start_time ~occasion_seed:(1000 + d);
    if List.mem d outage_days then
      Testbed.Allocator.set_outages
        (Testbed.Fablib.allocator fabric)
        [ (start_time, start_time +. Netcore.Timebase.day) ];
    let report =
      Coordinator.run_occasion ~fabric ~driver ~config ~start_time
        ~duration:(0.75 *. Netcore.Timebase.hour) ()
    in
    let tally = { ok = 0; degraded = 0; failed = 0; incomplete = 0 } in
    List.iter
      (fun (s : Coordinator.site_report) ->
        match s.Coordinator.outcome with
        | Coordinator.Site_success ->
          tally.ok <- tally.ok + 1;
          total.ok <- total.ok + 1
        | Coordinator.Site_degraded ->
          tally.degraded <- tally.degraded + 1;
          total.degraded <- total.degraded + 1
        | Coordinator.Site_failed _ ->
          tally.failed <- tally.failed + 1;
          total.failed <- total.failed + 1
        | Coordinator.Site_incomplete _ ->
          tally.incomplete <- tally.incomplete + 1;
          total.incomplete <- total.incomplete + 1)
      report.Coordinator.sites;
    tallies := (d, tally) :: !tallies;
    day := !day + stride
  done;
  Paper.row "%-6s %4s %9s %7s %11s" "day" "ok" "degraded" "failed" "incomplete";
  List.iter
    (fun (d, t) ->
      Paper.row "%-6d %4d %9d %7d %11d%s" d t.ok t.degraded t.failed t.incomplete
        (if t.failed > 10 then "   <- back-end incident" else ""))
    (List.rev !tallies);
  let grand = total.ok + total.degraded + total.failed + total.incomplete in
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 grand) in
  Paper.row
    "paper: 79%% of site runs succeeded; ~20%% lacked resources or hit back-end errors; the rest crashed.";
  Paper.row
    "measured: success %.1f%% (of which degraded %.1f%%), failed %.1f%%, incomplete %.1f%%"
    (pct (total.ok + total.degraded))
    (pct total.degraded) (pct total.failed) (pct total.incomplete);
  List.rev !tallies
