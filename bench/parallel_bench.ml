(* Sequential vs N-domain wall-clock on the two offline hot paths —
   pcap digestion and weighted flow aggregation — plus the determinism
   check the pool guarantees: parallel output must equal the sequential
   output exactly, whatever the pool size.

   Environment knobs (for CI smoke runs):
     PATCHWORK_BENCH_FRAMES   synthetic pcap size (default 30000)
     PATCHWORK_BENCH_DOMAINS  comma-separated pool sizes (default 2,4) *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let pool_sizes () =
  match Sys.getenv_opt "PATCHWORK_BENCH_DOMAINS" with
  | Some s ->
    let sizes = List.filter_map int_of_string_opt (String.split_on_char ',' s) in
    if sizes = [] then [ 2; 4 ] else sizes
  | None -> [ 2; 4 ]

let time f =
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  (r, wall, Gc.minor_words () -. m0)

(* Machine-readable results (CI uploads BENCH_parallel.json). *)
let json_runs : Obs.Export.Json.t list ref = ref []

let record label domains wall minor identical =
  json_runs :=
    Obs.Export.Json.Obj
      [
        ("label", Obs.Export.Json.Str label);
        ("domains", Obs.Export.Json.Num (float_of_int domains));
        ("wall_s", Obs.Export.Json.Num wall);
        ("minor_words", Obs.Export.Json.Num minor);
        ("identical", Obs.Export.Json.Bool identical);
      ]
    :: !json_runs

let run () =
  let frames = getenv_int "PATCHWORK_BENCH_FRAMES" 30_000 in
  let sizes = pool_sizes () in
  let rng = Netcore.Rng.create 42 in
  (* A fixed population of flows (frame templates) so aggregation sees
     realistic key repetition rather than one flow per frame. *)
  let templates = Array.init 256 (fun _ -> Frame_samples.random rng) in
  let w = Packet.Pcap.Writer.create () in
  for i = 0 to frames - 1 do
    Packet.Pcap.Writer.add_frame w
      ~ts:(float_of_int i *. 1e-4)
      (Netcore.Rng.choice rng templates)
  done;
  let buf = Packet.Pcap.Writer.contents w in
  Printf.printf "== parallel: digest + flow aggregation speedup ==\n";
  Printf.printf "workload: %d frames, %.1f MB pcap, %d cores available\n%!" frames
    (float_of_int (Bytes.length buf) /. 1e6)
    (Domain.recommended_domain_count ());
  (* Digest: pcap -> acap dissection. *)
  let seq_acaps, t_seq, m_seq = time (fun () -> Analysis.Digest.pcap_to_acaps buf) in
  Printf.printf "digest       %2d domain(s)  %7.3f s\n%!" 1 t_seq;
  record "digest" 1 t_seq m_seq true;
  List.iter
    (fun n ->
      Parallel.Pool.with_pool ~size:n (fun pool ->
          let acaps, t, m =
            time (fun () -> Analysis.Digest.pcap_to_acaps ~pool buf)
          in
          let identical = acaps = seq_acaps in
          Printf.printf "digest       %2d domain(s)  %7.3f s  %5.2fx  identical=%b\n%!"
            n t (t_seq /. Float.max 1e-9 t) identical;
          record "digest" n t m identical))
    sizes;
  (* Flow aggregation: per-sample groups with mixed sampling fractions,
     replicated so the table work dominates timer noise. *)
  let base_groups =
    List.mapi
      (fun i chunk -> (chunk, if i mod 3 = 0 then 0.5 else 1.0))
      (Parallel.Pool.chunk ~chunk_size:2_000 seq_acaps)
  in
  let groups = List.concat (List.init 10 (fun _ -> base_groups)) in
  let seq_flows, t_seq, m_seq =
    time (fun () -> Analysis.Flows.aggregate ~weights:groups [])
  in
  Printf.printf "flows        %2d domain(s)  %7.3f s  (%d groups, %d flows)\n%!" 1
    t_seq (List.length groups) (List.length seq_flows);
  record "flows" 1 t_seq m_seq true;
  List.iter
    (fun n ->
      Parallel.Pool.with_pool ~size:n (fun pool ->
          let flows, t, m =
            time (fun () -> Analysis.Flows.aggregate ~pool ~weights:groups [])
          in
          let identical = flows = seq_flows in
          Printf.printf "flows        %2d domain(s)  %7.3f s  %5.2fx  identical=%b\n%!"
            n t (t_seq /. Float.max 1e-9 t) identical;
          record "flows" n t m identical))
    sizes;
  let oc = open_out "BENCH_parallel.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Obs.Export.Json.to_string
           (Obs.Export.Json.Obj
              [
                ("bench", Obs.Export.Json.Str "parallel");
                ("frames", Obs.Export.Json.Num (float_of_int frames));
                ("runs", Obs.Export.Json.Arr (List.rev !json_runs));
              ]));
      output_char oc '\n');
  Printf.printf "wrote BENCH_parallel.json\n%!"
