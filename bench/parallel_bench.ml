(* Sequential vs N-domain wall-clock on the two offline hot paths —
   pcap digestion and weighted flow aggregation — plus the determinism
   check the pool guarantees: parallel output must equal the sequential
   output exactly, whatever the pool size.

   Environment knobs (for CI smoke runs):
     PATCHWORK_BENCH_FRAMES   synthetic pcap size (default 30000)
     PATCHWORK_BENCH_DOMAINS  comma-separated pool sizes (default 2,4) *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let pool_sizes () =
  match Sys.getenv_opt "PATCHWORK_BENCH_DOMAINS" with
  | Some s ->
    let sizes = List.filter_map int_of_string_opt (String.split_on_char ',' s) in
    if sizes = [] then [ 2; 4 ] else sizes
  | None -> [ 2; 4 ]

let time f =
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  (r, wall, Gc.minor_words () -. m0)

(* Machine-readable results (CI uploads BENCH_parallel.json). *)
let json_runs : Obs.Export.Json.t list ref = ref []

let record label domains wall minor identical =
  json_runs :=
    Obs.Export.Json.Obj
      [
        ("label", Obs.Export.Json.Str label);
        ("domains", Obs.Export.Json.Num (float_of_int domains));
        ("wall_s", Obs.Export.Json.Num wall);
        ("minor_words", Obs.Export.Json.Num minor);
        ("identical", Obs.Export.Json.Bool identical);
      ]
    :: !json_runs

let run () =
  let frames = getenv_int "PATCHWORK_BENCH_FRAMES" 30_000 in
  let sizes = pool_sizes () in
  let rng = Netcore.Rng.create 42 in
  (* A fixed population of flows (frame templates) so aggregation sees
     realistic key repetition rather than one flow per frame. *)
  let templates = Array.init 256 (fun _ -> Frame_samples.random rng) in
  let w = Packet.Pcap.Writer.create () in
  for i = 0 to frames - 1 do
    Packet.Pcap.Writer.add_frame w
      ~ts:(float_of_int i *. 1e-4)
      (Netcore.Rng.choice rng templates)
  done;
  let buf = Packet.Pcap.Writer.contents w in
  Printf.printf "== parallel: digest + flow aggregation speedup ==\n";
  Printf.printf "workload: %d frames, %.1f MB pcap, %d cores available\n%!" frames
    (float_of_int (Bytes.length buf) /. 1e6)
    (Domain.recommended_domain_count ());
  (* Digest: pcap -> acap dissection. *)
  let seq_acaps, t_seq, m_seq = time (fun () -> Analysis.Digest.pcap_to_acaps buf) in
  Printf.printf "digest       %2d domain(s)  %7.3f s\n%!" 1 t_seq;
  record "digest" 1 t_seq m_seq true;
  List.iter
    (fun n ->
      Parallel.Pool.with_pool ~size:n (fun pool ->
          let acaps, t, m =
            time (fun () -> Analysis.Digest.pcap_to_acaps ~pool buf)
          in
          let identical = acaps = seq_acaps in
          Printf.printf "digest       %2d domain(s)  %7.3f s  %5.2fx  identical=%b\n%!"
            n t (t_seq /. Float.max 1e-9 t) identical;
          record "digest" n t m identical))
    sizes;
  (* Flow aggregation: per-sample groups with mixed sampling fractions,
     replicated so the table work dominates timer noise. *)
  let base_groups =
    List.mapi
      (fun i chunk -> (chunk, if i mod 3 = 0 then 0.5 else 1.0))
      (Parallel.Pool.chunk ~chunk_size:2_000 seq_acaps)
  in
  let groups = List.concat (List.init 10 (fun _ -> base_groups)) in
  let seq_flows, t_seq, m_seq =
    time (fun () -> Analysis.Flows.aggregate ~weights:groups [])
  in
  Printf.printf "flows        %2d domain(s)  %7.3f s  (%d groups, %d flows)\n%!" 1
    t_seq (List.length groups) (List.length seq_flows);
  record "flows" 1 t_seq m_seq true;
  List.iter
    (fun n ->
      Parallel.Pool.with_pool ~size:n (fun pool ->
          let flows, t, m =
            time (fun () -> Analysis.Flows.aggregate ~pool ~weights:groups [])
          in
          let identical = flows = seq_flows in
          Printf.printf "flows        %2d domain(s)  %7.3f s  %5.2fx  identical=%b\n%!"
            n t (t_seq /. Float.max 1e-9 t) identical;
          record "flows" n t m identical))
    sizes;
  (* Series-collector overhead guard: the live exposition samples the
     registry after every occasion, so a collect must stay far below the
     occasion work itself.  A registry populated like a federation-wide
     run (per-site capture counters, pool + queue metrics) is sampled
     repeatedly; the guard asserts the per-collect cost under 1% of the
     sequential flow-aggregation wall time standing in for occasion
     work. *)
  let guard_ok =
    let reg = Obs.Registry.create () in
    let sites = List.init 30 (fun i -> Printf.sprintf "SITE%02d" i) in
    List.iter
      (fun site ->
        let l = [ ("site", site) ] in
        List.iter
          (fun name -> Obs.Registry.inc (Obs.Registry.counter reg name ~labels:l) 1e6)
          [
            "capture_offered_frames_total";
            "capture_switch_dropped_frames_total";
            "capture_host_dropped_frames_total";
            "capture_frames_total";
            "capture_stored_bytes_total";
          ])
      sites;
    List.iter
      (fun d ->
        Obs.Registry.inc
          (Obs.Registry.counter reg "pool_domain_busy_seconds_total"
             ~labels:[ ("domain", string_of_int d) ])
          10.0)
      [ 0; 1; 2; 3 ];
    let qw = Obs.Registry.histogram reg "pool_queue_wait_seconds" in
    for i = 1 to 1000 do
      Obs.Registry.observe qw (float_of_int i *. 1e-4)
    done;
    let col = Obs.Series.Collector.create () in
    let rounds = 200 in
    let (), t_collect, m_collect =
      time (fun () ->
          for i = 0 to rounds do
            Obs.Registry.inc
              (Obs.Registry.counter reg "occasions_total")
              1.0;
            Obs.Series.Collector.collect col ~at:(float_of_int i *. 600.0) reg
          done)
    in
    let per_collect = t_collect /. float_of_int (rounds + 1) in
    let budget = 0.01 *. t_seq in
    let ok = per_collect < budget in
    Printf.printf
      "series-collect  %7.6f s/collect  (budget %.6f s = 1%% of occasion work)  %s\n%!"
      per_collect budget
      (if ok then "OK" else "FAIL");
    record "series_collect" 1 per_collect m_collect ok;
    json_runs :=
      Obs.Export.Json.Obj
        [
          ("label", Obs.Export.Json.Str "series_collect_guard");
          ("per_collect_s", Obs.Export.Json.Num per_collect);
          ("occasion_wall_s", Obs.Export.Json.Num t_seq);
          ( "fraction_of_occasion",
            Obs.Export.Json.Num (per_collect /. Float.max 1e-9 t_seq) );
          ("ok", Obs.Export.Json.Bool ok);
        ]
      :: !json_runs;
    ok
  in
  let oc = open_out "BENCH_parallel.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Obs.Export.Json.to_string
           (Obs.Export.Json.Obj
              [
                ("bench", Obs.Export.Json.Str "parallel");
                ("frames", Obs.Export.Json.Num (float_of_int frames));
                ("runs", Obs.Export.Json.Arr (List.rev !json_runs));
              ]));
      output_char oc '\n');
  Printf.printf "wrote BENCH_parallel.json\n%!";
  if not guard_ok then begin
    Printf.eprintf "series-collector guard failed: sampling costs more than 1%% of occasion work\n%!";
    exit 1
  end
