(* The paper-reproduction bench harness: one target per table/figure.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig6 table1 ...
     dune exec bench/main.exe bechamel   # micro-benchmarks only
*)

let experiments =
  [
    ("fig2", Fig_infra.fig2);
    ("fig3", Fig_infra.fig3);
    ("fig4", Fig_infra.fig4);
    ("fig5", Fig_infra.fig5);
    ("fig6", Fig_util.fig6);
    ("fig10", fun () -> ignore (Fig_behavior.fig10 ()));
    ("fig11", Fig_profile.fig11);
    ("fig12", Fig_profile.fig12);
    ("fig13", Fig_profile.fig13);
    ("fig15", Fig_profile.fig15);
    ("flows", Fig_profile.section_8_2_flows);
    ("profile", Fig_profile.summary);
    ("table1", Fig_storage.table1);
    ("table2", Fig_storage.table2);
    ("tcpdump", Fig_storage.tcpdump_bound);
    ("fig14", Fig_storage.fig14);
    ("bottleneck", Fig_storage.bottleneck_eta);
    ("ablation", Ablation.run);
    ("figures", Fig_svg.run);
    ("netflow", Netflow_cmp.run);
    ("lessons", Lessons.run);
    ("parallel", Parallel_bench.run);
    ("bechamel", Micro.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...]";
  print_endline "experiments:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) experiments

let () =
  match Array.to_list Sys.argv with
  | _ :: ([ "-h" ] | [ "--help" ]) -> usage ()
  | [ _ ] ->
    (* Run the complete harness. *)
    List.iter (fun (_, f) -> f ()) experiments
  | _ :: names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.printf "unknown experiment %S\n" name;
          usage ();
          exit 1)
      names
  | [] -> usage ()
