(* §4 "Asymmetry in general profiling": NetFlow-style export vs
   Patchwork's data-plane capture on the same port.

   Two slices reuse the same 10.x addressing (FABRIC slices routinely
   do).  NetFlow's 5-tuple records merge them; Patchwork's flow
   classification keys on the virtualization tags and keeps them apart —
   and only the capture sees encapsulation stacks and frame sizes at
   all. *)

module Switch = Testbed.Switch
module Flow_model = Traffic.Flow_model

let make_slice_flow ~flow_id ~vlan rng =
  (* Both slices run the identical experiment: same subnet, same ports. *)
  let module H = Packet.Headers in
  let template =
    [
      H.Ethernet { src = Netcore.Mac.random rng; dst = Netcore.Mac.random rng };
      H.Vlan { pcp = 0; dei = false; vid = vlan };
      H.Mpls { label = 10_000 + vlan; tc = 0; ttl = 64 };
      H.Ipv4
        { src = Netcore.Ipv4_addr.of_string "10.0.1.10";
          dst = Netcore.Ipv4_addr.of_string "10.0.1.20";
          dscp = 0; ttl = 64; ident = 0; dont_fragment = true };
      H.Tcp
        { src_port = 41000; dst_port = 5201; seq = 0l; ack_seq = 0l;
          flags = H.flags_psh_ack; window = 512 };
    ]
  in
  Flow_model.make ~flow_id ~template
    ~frame_size:(Netcore.Dist.Empirical [| (0.9, 1948.0); (0.1, 66.0) |])
    ~avg_frame_size:1760.0 ~byte_rate:2e8 ~start_time:0.0 ~duration:600.0 ()

let run () =
  Paper.section "§4 comparison: NetFlow export vs Patchwork capture";
  let engine = Simcore.Engine.create () in
  let sw = Switch.create engine ~site_name:"CMP" ~ports:4 ~line_rate:100e9 in
  let rng = Netcore.Rng.create 5 in
  let flow_a = make_slice_flow ~flow_id:1 ~vlan:100 rng in
  let flow_b = make_slice_flow ~flow_id:2 ~vlan:200 rng in
  let attach (spec : Flow_model.spec) =
    Switch.attach_flow sw ~port:0 ~dir:Switch.Rx ~byte_rate:spec.Flow_model.byte_rate
      ~frame_rate:(Flow_model.frame_rate spec) ~flow:spec.Flow_model.flow_id
  in
  attach flow_a;
  attach flow_b;
  let resolver = function 1 -> Some flow_a | 2 -> Some flow_b | _ -> None in
  (* NetFlow view. *)
  let nf =
    Traffic.Netflow.export ~resolver sw ~port:0 ~start_time:0.0 ~end_time:20.0
  in
  Paper.row "NetFlow records on the port: %d" (Traffic.Netflow.distinct_flows nf);
  List.iter
    (fun (r : Traffic.Netflow.record) ->
      Paper.row "  %s:%d -> %s:%d proto %d: %.0f packets, %.2e bytes"
        r.Traffic.Netflow.nf_src r.Traffic.Netflow.nf_src_port
        r.Traffic.Netflow.nf_dst r.Traffic.Netflow.nf_dst_port
        r.Traffic.Netflow.nf_proto r.Traffic.Netflow.nf_packets
        r.Traffic.Netflow.nf_bytes)
    nf;
  (* Patchwork view: capture the mirrored port and classify flows. *)
  (match Switch.add_mirror sw ~src_port:0 ~dirs:Switch.Both ~dst_port:3 with
  | Error m -> Paper.row "mirror failed: %s" m
  | Ok _mirror ->
    let acaps = ref [] in
    List.iter
      (fun spec ->
        List.iter
          (fun (ts, frame) -> acaps := Dissect.Acap.of_frame ~ts frame :: !acaps)
          (Flow_model.frames_in_window spec (Netcore.Rng.create 6) ~start_time:0.0
             ~end_time:2.0))
      [ flow_a; flow_b ];
    let observed = Analysis.Analyze.observed_flows !acaps in
    Paper.row "Patchwork distinct flows (tag-aware keys): %d" observed;
    let h = Analysis.Analyze.frame_size_histogram !acaps in
    let fr = Netcore.Histogram.fractions h in
    Paper.row "Patchwork additionally sees: %d-deep stacks, %.0f%% jumbo frames"
      (List.fold_left
         (fun acc (r : Dissect.Acap.record) ->
           max acc (List.length r.Dissect.Acap.stack))
         0 !acaps)
      (100.0 *. (fr.(6) +. fr.(7) +. fr.(8))));
  Paper.row
    "paper: switch-side standards 'do not distinguish between testbed users and provide coarse statistics'.";
  Paper.row
    "measured: NetFlow merges the two slices into one record; the capture keeps them apart and retains wire detail."
