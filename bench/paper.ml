(* Shared helpers for the paper-reproduction benches. *)

let seed = 2024

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

let bar width fraction =
  let n = int_of_float (fraction *. float_of_int width) in
  String.make (max 0 (min width n)) '#'

(* A fresh federation + traffic for one occasion starting at an absolute
   time.  Each occasion is its own engine, as in the real system, where
   every run sets its slices up from scratch. *)
let fresh_occasion ~occasion_seed ~start_time =
  let engine = Simcore.Engine.create ~start_time () in
  let fabric = Testbed.Fablib.create ~seed engine in
  let driver = Traffic.Driver.create fabric ~seed:occasion_seed in
  (engine, fabric, driver)

(* Resource pressure from other researchers at a given time: scales with
   seasonal activity plus site-day noise. *)
let apply_external_pressure fabric ~at ~occasion_seed =
  let model = Testbed.Fablib.model fabric in
  let allocator = Testbed.Fablib.allocator fabric in
  let act = Traffic.Workload.activity ~seed at in
  Array.iter
    (fun (site : Testbed.Info_model.site) ->
      let rng =
        Netcore.Rng.create
          ((occasion_seed * 97) + (site.Testbed.Info_model.index * 31) + 13)
      in
      let noise = Netcore.Rng.gaussian rng ~mu:0.0 ~sigma:0.28 in
      let u = 0.38 +. (0.12 *. act) +. Float.abs noise in
      Testbed.Allocator.set_external_utilization allocator
        ~site:site.Testbed.Info_model.name
        (Float.max 0.0 (Float.min 1.0 u)))
    model.Testbed.Info_model.sites

(* One all-experiment profiling occasion; returns the coordinator
   report. *)
let run_profile_occasion ?(config = Patchwork.Config.default) ?(pressure = true)
    ~occasion_seed ~start_time ~duration () =
  let _, fabric, driver = fresh_occasion ~occasion_seed ~start_time in
  if pressure then apply_external_pressure fabric ~at:start_time ~occasion_seed;
  Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~start_time
    ~duration ()
