(* Sequential vs pipelined weekly service, plus the determinism checks
   behind both: the cumulative profile must be byte-identical whichever
   way the occasions are scheduled, and the traffic driver's synthesis
   must be bit-identical at any pool size and presample slab.

   Wall clock is hardware-dependent — on a single-core container the
   pipelined run can even be slower (two domains contending for one
   core) — so the pass/fail signal is identity, and the wall times are
   recorded for the multicore trend across commits.

   Environment knobs (for CI smoke runs):
     PATCHWORK_BENCH_WEEKS    occasions per service run (default 3)
     PATCHWORK_BENCH_HOURS    simulated hours per occasion (default 1)
     PATCHWORK_BENCH_DOMAINS  pool size per stage (default 2) *)

module J = Obs.Export.Json

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let seed = 2024
let start_day = 30

(* One simulated week, mirroring the CLI's weekly loop. *)
let run_week ~pool ~hours w =
  let day = start_day + (7 * w) in
  let start_time = float_of_int day *. Netcore.Timebase.day in
  let engine = Simcore.Engine.create ~start_time () in
  let fabric = Testbed.Fablib.create ~seed engine in
  let driver = Traffic.Driver.create ~pool fabric ~seed:(seed + (31 * w)) in
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.samples_per_run = 4;
      max_frames_per_sample = 2000;
      pool_size = Parallel.Pool.size pool;
    }
  in
  Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~pool ~start_time
    ~duration:(hours *. Netcore.Timebase.hour) ()

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* --- driver synthesis determinism: pool sizes x slab lengths --- *)

(* Fingerprint of a finished traffic run: spawn count, the live spec
   table (sorted by flow id, full structural content) and the total
   bytes the switch counters saw — the latter covers flows that already
   detached. *)
let synthesis_run ~pool_size ~slab ~batch_events =
  Parallel.Pool.with_pool ~size:pool_size @@ fun pool ->
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed:7 engine in
  let driver = Traffic.Driver.create ~pool ~slab ~batch_events fabric ~seed:7 in
  Traffic.Driver.start driver ~until:5400.0;
  Simcore.Engine.run ~until:5400.0 engine;
  let specs = ref [] in
  let m = Testbed.Fablib.model fabric in
  let tx = ref 0.0 in
  Array.iter
    (fun (site : Testbed.Info_model.site) ->
      let name = site.Testbed.Info_model.name in
      let sw = Testbed.Fablib.switch fabric ~site:name in
      List.iter
        (fun port ->
          tx := !tx +. (Testbed.Switch.read_counters sw ~port).Testbed.Switch.tx_bytes;
          List.iter
            (fun (a : Testbed.Switch.attachment) ->
              match Traffic.Driver.resolver driver a.Testbed.Switch.flow with
              | Some spec -> specs := spec :: !specs
              | None -> ())
            (Testbed.Switch.attachments sw ~port))
        (Testbed.Fablib.all_ports fabric ~site:name))
    m.Testbed.Info_model.sites;
  let specs =
    List.sort_uniq
      (fun (a : Traffic.Flow_model.spec) b ->
        compare a.Traffic.Flow_model.flow_id b.Traffic.Flow_model.flow_id)
      !specs
  in
  ( (Traffic.Driver.spawned_flows driver, specs, !tx),
    Simcore.Engine.executed engine,
    Simcore.Engine.batched_total engine )

let synthesis_fingerprint ~pool_size ~slab =
  let fp, _, _ = synthesis_run ~pool_size ~slab ~batch_events:true in
  fp

let () =
  let weeks = getenv_int "PATCHWORK_BENCH_WEEKS" 3 in
  let hours = getenv_float "PATCHWORK_BENCH_HOURS" 1.0 in
  let domains = getenv_int "PATCHWORK_BENCH_DOMAINS" 2 in
  Printf.printf "pipeline bench: %d weeks x %.1fh, %d domain(s) per stage\n%!"
    weeks hours domains;

  (* Sequential weekly service. *)
  let (profile_seq : Analysis.Profile.t), seq_wall =
    wall (fun () ->
        Parallel.Pool.with_pool ~size:domains @@ fun pool ->
        let b = Analysis.Profile.Builder.create () in
        for w = 0 to weeks - 1 do
          Analysis.Profile.Builder.add_report ~pool b (run_week ~pool ~hours w)
        done;
        Analysis.Profile.Builder.finish b)
  in
  Printf.printf "sequential: %.3f s\n%!" seq_wall;

  (* Pipelined weekly service: simulate on a background domain, absorb
     on this one; separate pools per stage. *)
  let (profile_pipe, stats), pipe_wall =
    wall (fun () ->
        Parallel.Pool.with_pool ~size:domains @@ fun an_pool ->
        Parallel.Pool.with_pool ~size:domains @@ fun sim_pool ->
        let b = Analysis.Profile.Builder.create () in
        let stats =
          Patchwork.Pipeline.run ~n:weeks
            ~produce:(fun w -> run_week ~pool:sim_pool ~hours w)
            ~consume:(fun _ report ->
              Analysis.Profile.Builder.add_report ~pool:an_pool b report)
            ()
        in
        (Analysis.Profile.Builder.finish b, stats))
  in
  let identical = Analysis.Profile.equal profile_seq profile_pipe in
  Printf.printf
    "pipelined:  %.3f s (simulate %.3f s, analyze %.3f s, overlap %.3f s, max \
     depth %d)  identical=%b\n%!"
    pipe_wall stats.Patchwork.Pipeline.produce_busy_s
    stats.Patchwork.Pipeline.consume_busy_s stats.Patchwork.Pipeline.overlap_s
    stats.Patchwork.Pipeline.max_depth identical;

  (* Synthesis determinism across pool sizes and slab lengths. *)
  let reference = synthesis_fingerprint ~pool_size:1 ~slab:900.0 in
  let synth_identical = ref true in
  List.iter
    (fun (pool_size, slab) ->
      let fp = synthesis_fingerprint ~pool_size ~slab in
      let same = fp = reference in
      if not same then synth_identical := false;
      let spawned, _, _ = fp in
      Printf.printf "synthesis pool=%d slab=%5.0fs: %d flows  identical=%b\n%!"
        pool_size slab spawned same)
    [ (2, 900.0); (4, 900.0); (4, 300.0); (1, 7200.0) ];

  (* Batched vs per-event engine replay: the same arrivals enter the
     engine as one pre-sorted block per site-slab instead of one heap
     push and one closure each.  Identity (fingerprint and executed
     event count) is the pass/fail signal; events/sec is recorded for
     the multicore trend — on a single-core container the speedup may
     not materialize. *)
  let (fp_batched, ex_batched, batched_total), batched_wall =
    wall (fun () -> synthesis_run ~pool_size:1 ~slab:900.0 ~batch_events:true)
  in
  let (fp_unbatched, ex_unbatched, _), unbatched_wall =
    wall (fun () -> synthesis_run ~pool_size:1 ~slab:900.0 ~batch_events:false)
  in
  let batch_identical = fp_batched = fp_unbatched && ex_batched = ex_unbatched in
  let evps ex w = float_of_int ex /. Float.max 1e-9 w in
  Printf.printf
    "events batched:   %9.0f events/s (%d executed, %d via schedule_batch)  \
     identical=%b\n%!"
    (evps ex_batched batched_wall)
    ex_batched batched_total batch_identical;
  Printf.printf "events per-event: %9.0f events/s (%d executed)\n%!"
    (evps ex_unbatched unbatched_wall)
    ex_unbatched;

  let oc = open_out "BENCH_pipeline.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (J.to_string
           (J.Obj
              [
                ("bench", J.Str "pipeline");
                ("weeks", J.Num (float_of_int weeks));
                ("hours", J.Num hours);
                ("domains", J.Num (float_of_int domains));
                ("sequential_wall_s", J.Num seq_wall);
                ("pipelined_wall_s", J.Num pipe_wall);
                ("speedup", J.Num (seq_wall /. Float.max 1e-9 pipe_wall));
                ("produce_busy_s", J.Num stats.Patchwork.Pipeline.produce_busy_s);
                ("consume_busy_s", J.Num stats.Patchwork.Pipeline.consume_busy_s);
                ("overlap_s", J.Num stats.Patchwork.Pipeline.overlap_s);
                ("max_queue_depth", J.Num (float_of_int stats.Patchwork.Pipeline.max_depth));
                ("identical", J.Bool identical);
                ("synthesis_identical", J.Bool !synth_identical);
                ( "events",
                  J.Obj
                    [
                      ("executed", J.Num (float_of_int ex_batched));
                      ("batched_total", J.Num (float_of_int batched_total));
                      ("batched_wall_s", J.Num batched_wall);
                      ("unbatched_wall_s", J.Num unbatched_wall);
                      ( "batched_events_per_s",
                        J.Num (evps ex_batched batched_wall) );
                      ( "unbatched_events_per_s",
                        J.Num (evps ex_unbatched unbatched_wall) );
                      ("identical", J.Bool batch_identical);
                    ] );
              ]));
      output_char oc '\n');
  Printf.printf "wrote BENCH_pipeline.json\n%!";
  if not identical then begin
    Printf.printf "FAIL: pipelined profile diverged from the sequential one\n";
    exit 1
  end;
  if not !synth_identical then begin
    Printf.printf
      "FAIL: traffic synthesis diverged across pool sizes / slab lengths\n";
    exit 1
  end;
  if not batch_identical then begin
    Printf.printf "FAIL: batched event replay diverged from per-event replay\n";
    exit 1
  end
