(* Flow-store bench: spilled segments + query vs the in-memory merge.

   Builds a synthetic multi-group flow workload (mixed sampling
   fractions, including weights with no exact float representation, and
   deliberately byte-tied flows), aggregates it entirely in memory with
   Flows.merge, then writes it through the spill writer and queries the
   segments back.  Exits 1 if the query result is not byte-identical to
   the in-memory merge (same order, same weighted totals), if the top-k
   query diverges from Flows.top_n, or if the top-k query's heap
   footprint is not smaller than the in-memory merge's.

   Results (walls, peak heap words per phase, segment/spill counts) are
   recorded in BENCH_flowstore.json.

   Peak heap per phase: each phase starts from Gc.compact and a GC alarm
   samples heap_words at every major-cycle end; the phase peak is the
   max of those samples and a final sample.  On any hardware this is an
   upper-bound-ish proxy, good enough to show that a top-k scan stays
   far below the all-in-heap table. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with _ -> default)
  | None -> default

let n_flows = env_int "PATCHWORK_BENCH_FLOWS" 20_000
let n_groups = env_int "PATCHWORK_BENCH_GROUPS" 8

let fractions = [| 1.0; 0.5; 0.3; 0.25; 1.0; 0.125; 0.6; 1.0 |]

(* One synthetic dissected record; keys vary with the flow id, sizes
   repeat so many flows tie exactly on weighted bytes. *)
let acap_record ~flow ~ts ~len ~rst =
  {
    Dissect.Acap.ts;
    orig_len = len;
    cap_len = min len 200;
    stack = [ "eth"; "vlan"; "ipv4"; (if flow mod 5 = 0 then "udp" else "tcp") ];
    vlan_ids = [ 100 + (flow mod 7) ];
    mpls_labels = [];
    src = Some (Printf.sprintf "10.%d.%d.%d" (flow / 65536) (flow / 256 mod 256) (flow mod 256));
    dst = Some "10.200.0.1";
    l4 = Some (40000 + (flow mod 1000), 5201);
    tcp_rst = rst;
    truncated = false;
  }

let build_groups () =
  let rng = Netcore.Rng.create 42 in
  List.init n_groups (fun g ->
      let records = ref [] in
      for flow = 0 to n_flows - 1 do
        (* Every flow appears in every other group on average. *)
        if flow mod 2 = g mod 2 || Netcore.Rng.bernoulli rng 0.3 then begin
          let n = 1 + Netcore.Rng.int rng 3 in
          for i = 0 to n - 1 do
            records :=
              acap_record ~flow
                ~ts:(float_of_int ((g * 1000) + i))
                ~len:(64 + (64 * (flow mod 4)))
                ~rst:(flow mod 97 = 0)
              :: !records
          done
        end
      done;
      (List.rev !records, fractions.(g mod Array.length fractions)))

(* --- per-phase instrumentation ------------------------------------- *)

let peak = ref 0

let sample_heap () =
  let h = (Gc.quick_stat ()).Gc.heap_words in
  if h > !peak then peak := h

let phase f =
  Gc.compact ();
  let base = (Gc.quick_stat ()).Gc.heap_words in
  peak := base;
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let wall = Unix.gettimeofday () -. t0 in
  sample_heap ();
  (result, wall, base, !peak)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let () =
  let _alarm = Gc.create_alarm sample_heap in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "patchwork-flowstore-bench" in
  rm_rf dir;
  Printf.printf "flow-store bench: %d flows x %d groups\n%!" n_flows n_groups;

  let groups = build_groups () in
  let shards =
    List.map
      (fun (records, fraction) ->
        let shard = Analysis.Flows.Shard.create () in
        List.iter (Analysis.Flows.Shard.add shard) records;
        (shard, fraction))
      groups
  in
  let total_records =
    List.fold_left (fun acc (rs, _) -> acc + List.length rs) 0 groups
  in

  (* Phase 1: the all-in-heap merge (the baseline the store replaces). *)
  let expected, mem_wall, mem_base, mem_peak =
    phase (fun () -> Analysis.Flows.merge shards)
  in
  Printf.printf "in-memory merge: %d flows, %.3fs, peak heap %d words (+%d)\n%!"
    (List.length expected) mem_wall mem_peak (mem_peak - mem_base);

  (* Phase 2: spill the same groups through the writer.  The threshold
     forces several segments so the query below really k-way merges. *)
  let spill_records = max 1 ((total_records / 4) + 1) in
  let (segments, spill_bytes), write_wall, write_base, write_peak =
    phase (fun () ->
        let w =
          Analysis.Flow_store.Writer.create ~spill_records ~dir ()
        in
        List.iter
          (fun (shard, fraction) ->
            Analysis.Flow_store.Writer.add_shard w ~site:"BENCH" ~fraction shard)
          shards;
        let paths = Analysis.Flow_store.Writer.finish w in
        (paths, Analysis.Flow_store.Writer.spilled_bytes w))
  in
  Printf.printf "spill write: %d segments, %d bytes, %.3fs, peak heap %d words (+%d)\n%!"
    (List.length segments) spill_bytes write_wall write_peak
    (write_peak - write_base);

  (* Phase 3: bounded top-k query — must never hold the full table. *)
  let topk = 10 in
  let top_res, topk_wall, topk_base, topk_peak =
    phase (fun () -> Analysis.Flow_store.query ~top:topk segments)
  in
  Printf.printf "top-%d query: scanned %d records, %.3fs, peak heap %d words (+%d)\n%!"
    topk top_res.Analysis.Flow_store.stats.Analysis.Flow_store.records_scanned
    topk_wall topk_peak (topk_peak - topk_base);

  (* Phase 4: full query — the identity check against the merge. *)
  let full_res, full_wall, full_base, full_peak =
    phase (fun () -> Analysis.Flow_store.query segments)
  in
  Printf.printf "full query: %d flows, %.3fs, peak heap %d words (+%d)\n%!"
    (List.length full_res.Analysis.Flow_store.flows)
    full_wall full_peak (full_peak - full_base);

  let identical = full_res.Analysis.Flow_store.flows = expected in
  let topk_identical =
    top_res.Analysis.Flow_store.flows = Analysis.Flows.top_n expected topk
  in
  let topk_delta = topk_peak - topk_base
  and mem_delta = mem_peak - mem_base in
  let heap_bounded = topk_delta < mem_delta || mem_delta = 0 in
  Printf.printf "identical=%b topk_identical=%b heap_bounded=%b (+%d vs +%d words)\n%!"
    identical topk_identical heap_bounded topk_delta mem_delta;

  let oc = open_out "BENCH_flowstore.json" in
  Printf.fprintf oc
    {|{
  "flows": %d,
  "groups": %d,
  "records": %d,
  "segments": %d,
  "spill_bytes": %d,
  "spill_threshold_records": %d,
  "in_memory": { "wall_s": %.6f, "peak_heap_words": %d, "delta_heap_words": %d },
  "store_write": { "wall_s": %.6f, "peak_heap_words": %d, "delta_heap_words": %d },
  "query_topk": { "wall_s": %.6f, "peak_heap_words": %d, "delta_heap_words": %d },
  "query_full": { "wall_s": %.6f, "peak_heap_words": %d, "delta_heap_words": %d },
  "identical": %b,
  "topk_identical": %b,
  "heap_bounded": %b
}
|}
    n_flows n_groups total_records (List.length segments) spill_bytes
    spill_records mem_wall mem_peak (mem_peak - mem_base) write_wall write_peak
    (write_peak - write_base) topk_wall topk_peak topk_delta full_wall full_peak
    (full_peak - full_base) identical topk_identical heap_bounded;
  close_out oc;
  Printf.printf "wrote BENCH_flowstore.json\n%!";
  rm_rf dir;
  if not (identical && topk_identical && heap_bounded) then exit 1
