(* The "figures" target: render every reproduced figure as SVG, the
   counterpart of the paper's visualization stage. *)

module Charts = Analysis.Charts
module Svg = Analysis.Svg

let dir = "figures"

let ensure_dir () = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let emit name svg =
  Svg.write svg (Filename.concat dir name);
  Paper.row "  wrote %s/%s" dir name

let infra_figures () =
  let model = Testbed.Info_model.generate ~seed:Paper.seed () in
  emit "fig2_ports.svg"
    (Charts.stacked_bar_chart ~title:"Ports across production sites"
       ~x_axis:"site"
       ~y_axis:{ Charts.label = "ports"; log = false }
       ~series:[ "uplinks"; "downlinks" ]
       (Array.to_list
          (Array.map
             (fun (s : Testbed.Info_model.site) ->
               ( s.Testbed.Info_model.name,
                 [ float_of_int s.Testbed.Info_model.uplinks;
                   float_of_int s.Testbed.Info_model.downlinks ] ))
             model.Testbed.Info_model.sites)));
  let slices = Lazy.force Fig_infra.slices in
  let fractions = Traffic.Slice_process.spread_fractions slices ~max_sites:10 in
  emit "fig3_spread.svg"
    (Charts.bar_chart ~title:"Slices vs number of sites used"
       ~x_axis:"sites used"
       ~y_axis:{ Charts.label = "% of slices"; log = false }
       (Array.to_list
          (Array.mapi
             (fun i f -> (string_of_int (i + 1), 100.0 *. f))
             fractions)));
  let marks = List.init 40 (fun i -> float_of_int (i + 1) *. 6.0) in
  let cdf = Traffic.Slice_process.duration_cdf slices ~at_hours:marks in
  emit "fig4_durations.svg"
    (Charts.cdf_chart ~title:"Duration of slices" ~x_axis:"hours" cdf);
  let series =
    Traffic.Slice_process.concurrency_series slices
      ~step:(12.0 *. Netcore.Timebase.hour)
      ~horizon:(365.0 *. Netcore.Timebase.day)
  in
  emit "fig5_concurrency.svg"
    (Charts.line_chart ~title:"Simultaneous slices over the year"
       ~x_axis:"week"
       ~y_axis:{ Charts.label = "live slices"; log = false }
       [
         ( "slices",
           Array.to_list
             (Array.map
                (fun (t, v) -> (t /. Netcore.Timebase.week, float_of_int v))
                series) );
       ])

let utilization_figure () =
  let avg = Fig_util.weekly_avg_rates () in
  emit "fig6_utilization.svg"
    (Charts.bar_chart ~title:"Weekly utilization of the testbed network"
       ~x_axis:"week"
       ~y_axis:{ Charts.label = "avg Tbps"; log = false }
       (Array.to_list (Array.mapi (fun w v -> (string_of_int w, v /. 1e12)) avg)))

let behavior_figure () =
  let tallies = Fig_behavior.fig10 ~stride:4 () in
  emit "fig10_behavior.svg"
    (Charts.stacked_bar_chart ~title:"Patchwork behavior over four months"
       ~x_axis:"day of year"
       ~y_axis:{ Charts.label = "site runs"; log = false }
       ~series:[ "success"; "degraded"; "failed"; "incomplete" ]
       (List.map
          (fun (d, (t : Fig_behavior.day_tally)) ->
            ( string_of_int d,
              [ float_of_int t.Fig_behavior.ok;
                float_of_int t.Fig_behavior.degraded;
                float_of_int t.Fig_behavior.failed;
                float_of_int t.Fig_behavior.incomplete ] ))
          tallies))

let profile_figures () =
  let profile = Fig_profile.get_profile () in
  List.iter
    (fun name -> Paper.row "  wrote %s/%s" dir name)
    (Analysis.Figures.write_profile_figures profile ~dir)

let run () =
  Paper.section "Rendering figures as SVG";
  ensure_dir ();
  infra_figures ();
  utilization_figure ();
  behavior_figure ();
  profile_figures ();
  Paper.row "figures written under %s/" dir
