(* Copied vs sliced vs fused vs overlay decode of a synthetic capture.

   Four ways through the offline pipeline:
     copied  Pcapng.read_any materializes every packet (Bytes.sub) and
             the acap list is dissected from the copies — the pre-index
             baseline;
     sliced  Pcap/Pcapng index + Packet.Slice views, parallel dissection
             over index ranges, same acap list, no payload copies;
     fused   the index ranges stream record dissection straight into
             per-range flow shards (Digest.pcap_to_flows_record),
             never materializing acap lists;
     overlay the zero-alloc cursor (Digest.pcap_to_flows): header
             fields are read in place through Packet.Slice, no header
             records at all — only the flow key string survives.

   Wall clock is hardware-dependent; the Gc allocation counters are not
   (on one domain they are exact and deterministic), so the bench's
   pass/fail signal is allocation plus bit-identical output.

   Environment knobs (for CI smoke runs):
     PATCHWORK_BENCH_FRAMES   synthetic capture size (default 100000)
     PATCHWORK_BENCH_DOMAINS  comma-separated pool sizes (default 2,4) *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let pool_sizes () =
  match Sys.getenv_opt "PATCHWORK_BENCH_DOMAINS" with
  | Some s ->
    let sizes = List.filter_map int_of_string_opt (String.split_on_char ',' s) in
    if sizes = [] then [ 2; 4 ] else sizes
  | None -> [ 2; 4 ]

(* FABRIC-style frames with MTU-ish data payloads (bulk transfers
   dominate capture bytes): the copying baseline's cost scales with
   payload bytes, so realistic data-frame sizes keep the comparison
   honest. *)
let random_frame rng =
  let services = [| "tls"; "iperf3"; "dns"; "ssh"; "mysql"; "nfs" |] in
  let service =
    Option.get (Dissect.Services.by_name (Netcore.Rng.choice rng services))
  in
  let stack =
    Traffic.Stack_builder.forward rng
      {
        Traffic.Stack_builder.vlan_id = 100 + Netcore.Rng.int rng 3900;
        mpls_labels = [ 16 + Netcore.Rng.int rng 100_000 ];
        use_pseudowire = Netcore.Rng.bernoulli rng 0.3;
        use_vxlan = Netcore.Rng.bernoulli rng 0.05;
        use_ipv6 = Netcore.Rng.bernoulli rng 0.02;
        service;
      }
  in
  Packet.Frame.make stack ~payload_len:(1400 + Netcore.Rng.int rng 401)

type run = { wall : float; minor : float; major : float }

(* Machine-readable results (CI uploads BENCH_decode.json as an
   artifact; the trend across commits is the regression signal). *)
let json_runs : Obs.Export.Json.t list ref = ref []

let record label domains (m : run) identical =
  json_runs :=
    Obs.Export.Json.Obj
      [
        ("label", Obs.Export.Json.Str label);
        ("domains", Obs.Export.Json.Num (float_of_int domains));
        ("wall_s", Obs.Export.Json.Num m.wall);
        ("minor_words", Obs.Export.Json.Num m.minor);
        ("major_words", Obs.Export.Json.Num m.major);
        ("identical", Obs.Export.Json.Bool identical);
      ]
    :: !json_runs

let write_json path fields =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Export.Json.to_string (Obs.Export.Json.Obj fields));
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" path

let measure f =
  Gc.full_major ();
  (* Gc.minor_words () reads the allocation pointer, so it is exact
     between collections; quick_stat's copy is only refreshed at GC
     points and would hide up to a minor-heap's worth of allocation. *)
  let s0 = Gc.quick_stat () in
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  let m1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  ( r,
    {
      wall;
      minor = m1 -. m0;
      major = s1.Gc.major_words -. s0.Gc.major_words;
    } )

let pr label domains m extra =
  Printf.printf "%-7s %2d domain(s)  %7.3f s  minor %8.2f Mw  major %8.2f Mw%s\n%!"
    label domains m.wall (m.minor /. 1e6) (m.major /. 1e6) extra

let () =
  let frames = getenv_int "PATCHWORK_BENCH_FRAMES" 100_000 in
  let rng = Netcore.Rng.create 42 in
  (* A fixed population of flow templates so the fused path sees
     realistic key repetition rather than one flow per packet. *)
  let templates = Array.init 256 (fun _ -> random_frame rng) in
  let w = Packet.Pcap.Writer.create () in
  for i = 0 to frames - 1 do
    Packet.Pcap.Writer.add_frame w
      ~ts:(float_of_int i *. 1e-5)
      (Netcore.Rng.choice rng templates)
  done;
  let buf = Packet.Pcap.Writer.contents w in
  Printf.printf "== decode: copied vs sliced vs fused vs overlay ==\n";
  Printf.printf "workload: %d packets, %.1f MB capture, %d cores available\n%!"
    frames
    (float_of_int (Bytes.length buf) /. 1e6)
    (Domain.recommended_domain_count ());
  let ok = ref true in
  let check b = ok := !ok && b; b in
  (* Sequential (1 domain): Gc counters are exact and deterministic. *)
  let copied_acaps, m_copied =
    measure (fun () -> Analysis.Digest.pcap_to_acaps_copying buf)
  in
  pr "copied" 1 m_copied "";
  record "copied" 1 m_copied true;
  let sliced_acaps, m_sliced =
    measure (fun () -> Analysis.Digest.pcap_to_acaps buf)
  in
  let sliced_identical = check (sliced_acaps = copied_acaps) in
  pr "sliced" 1 m_sliced (Printf.sprintf "  identical=%b" sliced_identical);
  record "sliced" 1 m_sliced sliced_identical;
  let savings = 100.0 *. (1.0 -. (m_sliced.minor /. m_copied.minor)) in
  Printf.printf "sliced minor-heap savings vs copied: %.1f%% (target >= 30%%)\n%!"
    savings;
  let baseline_flows = Analysis.Flows.aggregate copied_acaps in
  let fused_flows, m_fused =
    measure (fun () -> Analysis.Digest.pcap_to_flows_record buf)
  in
  let fused_identical = check (fused_flows = baseline_flows) in
  pr "fused" 1 m_fused
    (Printf.sprintf "  identical=%b (%d flows)" fused_identical
       (List.length fused_flows));
  record "fused" 1 m_fused fused_identical;
  (* Overlay cursor: same flows, no header records — its minor-heap
     floor per frame is the tentpole's regression signal. *)
  let overlay_flows, m_overlay =
    measure (fun () -> Analysis.Digest.pcap_to_flows buf)
  in
  let overlay_identical = check (overlay_flows = baseline_flows) in
  pr "overlay" 1 m_overlay
    (Printf.sprintf "  identical=%b" overlay_identical);
  record "overlay" 1 m_overlay overlay_identical;
  (* Cached overlay pass: bit-identical flows, but frames of already-seen
     flows skip dissection entirely, so the hit path's per-frame
     allocation floor is the regression signal. *)
  let counter name =
    match Obs.Registry.value Obs.Registry.default name with
    | Some (Obs.Registry.Counter v) -> v
    | _ -> 0.0
  in
  let cache_lookups () =
    (counter "flow_cache_hits_total", counter "flow_cache_misses_total")
  in
  let h0, mi0 = cache_lookups () in
  let cached_flows, m_cached =
    measure (fun () -> Analysis.Digest.pcap_to_flows ~cache_bits:10 buf)
  in
  let h1, mi1 = cache_lookups () in
  let hits = h1 -. h0 and lookups = h1 -. h0 +. (mi1 -. mi0) in
  let hit_rate = if lookups > 0.0 then hits /. lookups else 0.0 in
  let cached_identical = check (cached_flows = baseline_flows) in
  pr "cached" 1 m_cached
    (Printf.sprintf "  identical=%b (%.1f%% hits)" cached_identical
       (100.0 *. hit_rate));
  record "fused+cache" 1 m_cached cached_identical;
  (* Parallel: wall clock only (allocation spreads across domains), but
     the bit-identical guarantee must hold at every pool size. *)
  List.iter
    (fun n ->
      Parallel.Pool.with_pool ~size:n (fun pool ->
          let acaps, m =
            measure (fun () -> Analysis.Digest.pcap_to_acaps ~pool buf)
          in
          let identical = check (acaps = copied_acaps) in
          pr "sliced" n m
            (Printf.sprintf "  %5.2fx  identical=%b"
               (m_sliced.wall /. Float.max 1e-9 m.wall)
               identical);
          record "sliced" n m identical;
          let flows, m =
            measure (fun () -> Analysis.Digest.pcap_to_flows ~pool buf)
          in
          let identical = check (flows = baseline_flows) in
          pr "overlay" n m
            (Printf.sprintf "  %5.2fx  identical=%b"
               (m_overlay.wall /. Float.max 1e-9 m.wall)
               identical);
          record "overlay" n m identical;
          let flows, m =
            measure (fun () ->
                Analysis.Digest.pcap_to_flows ~pool ~cache_bits:10 buf)
          in
          let identical = check (flows = baseline_flows) in
          pr "cached" n m
            (Printf.sprintf "  %5.2fx  identical=%b"
               (m_cached.wall /. Float.max 1e-9 m.wall)
               identical);
          record "overlay+cache" n m identical))
    (pool_sizes ());
  (* The hit path should allocate a small constant per frame (shard
     accounting only); the fused dissection allocates the header stack.
     One domain keeps both counters exact. *)
  let fused_wpf = m_fused.minor /. float_of_int frames in
  let cached_wpf = m_cached.minor /. float_of_int frames in
  let alloc_ratio = fused_wpf /. Float.max 1e-9 cached_wpf in
  Printf.printf
    "cache hit-path minor words/frame: %.1f vs %.1f fused (%.1fx, target >= \
     3x)\n%!"
    cached_wpf fused_wpf alloc_ratio;
  (* Overlay vs record-building fused: the cursor must allocate at most
     half the words per frame of the reference path. *)
  let overlay_wpf = m_overlay.minor /. float_of_int frames in
  let overlay_ratio = overlay_wpf /. Float.max 1e-9 fused_wpf in
  Printf.printf
    "overlay minor words/frame: %.1f vs %.1f fused (%.2fx, target <= 0.5x)\n%!"
    overlay_wpf fused_wpf overlay_ratio;
  (* Instrumentation overhead: counters are batched per range and spans
     per stage, so disabling the registry must recover <5% wall clock on
     the sliced decode.  min-of-3 runs on each side; the absolute floor
     keeps sub-hundred-millisecond smoke workloads from failing on
     scheduler noise. *)
  let min_wall f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let _, m = measure f in
      if m.wall < !best then best := m.wall
    done;
    !best
  in
  Obs.Registry.set_enabled false;
  let t_off = min_wall (fun () -> Analysis.Digest.pcap_to_acaps buf) in
  Obs.Registry.set_enabled true;
  let t_on = min_wall (fun () -> Analysis.Digest.pcap_to_acaps buf) in
  let overhead_pct = 100.0 *. (t_on -. t_off) /. Float.max 1e-9 t_off in
  Printf.printf
    "metrics overhead on sliced decode: %.3f s off, %.3f s on, %+.2f%% \
     (budget < 5%%)\n%!"
    t_off t_on overhead_pct;
  let overhead_failed = overhead_pct > 5.0 && t_on -. t_off > 0.02 in
  write_json "BENCH_decode.json"
    [
      ("bench", Obs.Export.Json.Str "decode");
      ("frames", Obs.Export.Json.Num (float_of_int frames));
      ("capture_bytes", Obs.Export.Json.Num (float_of_int (Bytes.length buf)));
      ("runs", Obs.Export.Json.Arr (List.rev !json_runs));
      ("sliced_minor_savings_pct", Obs.Export.Json.Num savings);
      ( "cache",
        Obs.Export.Json.Obj
          [
            ("hit_rate", Obs.Export.Json.Num hit_rate);
            ("minor_words_per_frame", Obs.Export.Json.Num cached_wpf);
            ("fused_minor_words_per_frame", Obs.Export.Json.Num fused_wpf);
            ("alloc_ratio", Obs.Export.Json.Num alloc_ratio);
          ] );
      ( "overlay",
        Obs.Export.Json.Obj
          [
            ("minor_words_per_frame", Obs.Export.Json.Num overlay_wpf);
            ("fused_minor_words_per_frame", Obs.Export.Json.Num fused_wpf);
            ("ratio", Obs.Export.Json.Num overlay_ratio);
          ] );
      ( "metrics_overhead",
        Obs.Export.Json.Obj
          [
            ("disabled_wall_s", Obs.Export.Json.Num t_off);
            ("enabled_wall_s", Obs.Export.Json.Num t_on);
            ("pct", Obs.Export.Json.Num overhead_pct);
          ] );
    ];
  if not !ok then begin
    Printf.printf "FAIL: sliced/fused output diverged from the copying path\n";
    exit 1
  end;
  if overhead_failed then begin
    Printf.printf "FAIL: metrics overhead %.2f%% exceeds the 5%% budget\n"
      overhead_pct;
    exit 1
  end;
  if savings < 30.0 then
    Printf.printf
      "WARN: sliced minor-heap savings %.1f%% below the 30%% target\n" savings;
  if alloc_ratio < 3.0 then
    Printf.printf
      "WARN: cache hit-path allocation ratio %.1fx below the 3x target\n"
      alloc_ratio;
  if overlay_ratio > 0.5 then
    Printf.printf
      "WARN: overlay allocation ratio %.2fx above the 0.5x ceiling\n"
      overlay_ratio
