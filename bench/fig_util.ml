(* Fig 6: utilization of the testbed's network over each week of the
   year.  The paper sums the 5-minute byte-rate samples of every switch
   port per week; here the same quantity is computed from the workload
   model's expected per-site rates (the event-driven path produces the
   identical rates during occasions, but simulating 365 days of SNMP
   polling would only re-sample this function). *)

let weekly_avg_rates () =
  let model = Testbed.Info_model.generate ~seed:Paper.seed () in
  let profiles =
    Array.to_list model.Testbed.Info_model.sites
    |> List.map (Traffic.Workload.profile_for_site ~seed:Paper.seed)
  in
  let weeks = 52 in
  let sample_step = Netcore.Timebase.hour *. 3.0 in
  let weekly = Array.make weeks 0.0 in
  let counts = Array.make weeks 0 in
  let t = ref 0.0 in
  let horizon = 365.0 *. Netcore.Timebase.day in
  while !t < horizon do
    let w = Netcore.Timebase.week_of !t in
    if w < weeks then begin
      let total =
        List.fold_left
          (fun acc p -> acc +. Traffic.Workload.expected_site_rate p ~seed:Paper.seed !t)
          0.0 profiles
      in
      weekly.(w) <- weekly.(w) +. (total *. 8.0);
      counts.(w) <- counts.(w) + 1
    end;
    t := !t +. sample_step
  done;
  Array.mapi
    (fun i v -> if counts.(i) = 0 then 0.0 else v /. float_of_int counts.(i))
    weekly

let fig6 () =
  Paper.section "Fig 6: weekly utilization of the testbed network (2024)";
  let avg = weekly_avg_rates () in
  let peak = Array.fold_left Float.max 0.0 avg in
  Paper.row "%-5s %12s" "week" "avg rate";
  Array.iteri
    (fun w v ->
      Paper.row "%-5d %9.2f Tbps %s" w (v /. 1e12) (Paper.bar 50 (v /. peak)))
    avg;
  let peak_week = ref 0 in
  Array.iteri (fun w v -> if v = peak then peak_week := w) avg;
  Paper.row
    "paper: activity ramps toward April and November; peak week (before SC'24) averaged 3.968 Tbps.";
  Paper.row "measured: peak week %d averaged %.3f Tbps" !peak_week (peak /. 1e12)
