(* Tables 1-2, Fig 14 and the §8.1.2 software-capture bound: the
   capture-host storage study. *)

module Dpdk = Hostmodel.Dpdk_path
module Kernel = Hostmodel.Kernel_path

let table ~title ~truncation rows =
  Paper.section title;
  Paper.row "%-15s %-12s %-6s %-9s %-10s" "Frame Size (B)" "Rate (Gbps)" "Cores"
    "Loss (%)" "paper loss";
  List.iter
    (fun (frame, gbps, cores, paper_loss) ->
      let config = { Dpdk.default_config with Dpdk.cores; truncation } in
      let r =
        Dpdk.run config ~offered_rate:(gbps *. 1e9) ~frame_size:frame
          ~duration:30.0
      in
      Paper.row "%-15d %-12.0f %-6d %-9.2f %-10.2f" frame gbps cores
        r.Dpdk.loss_percent paper_loss)
    rows

let table1 () =
  table ~title:"Table 1: 200B truncation, 60:80 threshold" ~truncation:200
    [ (1514, 100.0, 5, 0.67); (1024, 100.0, 10, 0.13); (512, 60.0, 15, 0.03);
      (128, 15.0, 15, 0.10) ]

let table2 () =
  table ~title:"Table 2: 64B truncation, 60:80 threshold" ~truncation:64
    [ (1514, 100.0, 3, 0.17); (1024, 100.0, 5, 0.32); (512, 100.0, 15, 0.07);
      (128, 28.0, 15, 0.13) ]

let tcpdump_bound () =
  Paper.section "§8.1.2 software-based capture (tcpdump)";
  (* The traffic source: an iperf3 pair through an 11 Gbps-limited path,
     as in the paper's setup. *)
  let iperf =
    Traffic.Iperf.run
      { Traffic.Iperf.default with Traffic.Iperf.streams = 4; duration = 10.0 }
  in
  Paper.row "iperf3 -P 4 through the 11 Gbps path:";
  List.iteri
    (fun i (s : Traffic.Iperf.second_sample) ->
      if i < 5 then
        Paper.row "  [%2.0f-%2.0fs]  %6.2f Gbps  %d retransmits"
          s.Traffic.Iperf.interval_start
          (s.Traffic.Iperf.interval_start +. 1.0)
          (s.Traffic.Iperf.goodput /. 1e9)
          s.Traffic.Iperf.retransmits)
    iperf.Traffic.Iperf.samples;
  Paper.row "  sustained %.2f Gbps mean (paper: ~11 Gbps sustained)"
    (iperf.Traffic.Iperf.mean_goodput /. 1e9);
  let bound = Kernel.lossless_bound ~frame_size:1500 () in
  Paper.row "lossless capture bound @1500B frames: %.2f Gbps (paper: ~8.5 Gbps)"
    (bound /. 1e9);
  Paper.row "%-12s %10s" "rate (Gbps)" "loss (%)";
  List.iter
    (fun gbps ->
      let r =
        Kernel.run ~offered_rate:(gbps *. 1e9) ~frame_size:1500 ~duration:10.0 ()
      in
      Paper.row "%-12.1f %10.2f%s" gbps r.Kernel.loss_percent
        (if gbps <= 8.5 && r.Kernel.loss_percent < 0.5 then "   (lossless zone)"
         else ""))
    [ 2.0; 4.0; 6.0; 8.0; 8.5; 9.0; 10.0; 11.0 ];
  Paper.row
    "paper: tcpdump captured without loss until ~8.5 Gbps; the iperf3 pair sustained 11 Gbps."

(* Fig 14: summed writev latency vs page-cache usage under two threshold
   settings.  The paper transmits at 100 Gbps with DPDK-pktgen and
   buckets the bpftrace-measured sys_writev latencies, accounting each
   at its bucket's upper bound and ignoring the fast common case. *)
let fig14 () =
  Paper.section "Fig 14: summed writev latency vs free-cache usage (100 Gbps, 1514B)";
  let walk (bg, hard) =
    (* Walk the cache from empty toward the hard limit with
       incrementally longer captures; stop once usage plateaus (the
       throttled writer holds the cache at the threshold). *)
    let config =
      {
        Dpdk.default_config with
        Dpdk.cores = 8;
        dirty_background_ratio = bg;
        dirty_ratio = hard;
      }
    in
    let rec go i prev_used acc =
      if i > 24 then List.rev acc
      else begin
        let duration = 8.0 +. (float_of_int i *. 12.0) in
        let r = Dpdk.run config ~offered_rate:100e9 ~frame_size:1514 ~duration in
        let used = r.Dpdk.peak_cache_used_percent in
        let total_ms =
          Netcore.Histogram.Log2.upper_bound_sum r.Dpdk.writev_latency
            ~min_exponent:15
          /. 1e6
        in
        let acc = (used, total_ms) :: acc in
        if used -. prev_used < 0.2 && i > 1 then List.rev acc
        else go (i + 1) used acc
      end
    in
    go 0 (-1.0) []
  in
  (* Summed latency at the first sample reaching (near) a given cache
     usage — a throttled series plateaus, so later samples only keep
     accumulating in the same cell. *)
  let at_usage series target =
    match List.find_opt (fun (u, _) -> u >= target -. 4.0) series with
    | Some s -> s
    | None -> List.nth series (List.length series - 1)
  in
  let print_series label series =
    Paper.row "--- thresholds %s (midpoint at %s%% of free cache) ---" label
      (match label with "10:20" -> "15" | _ -> "35");
    Paper.row "%-22s %20s" "cache used (%)" "summed latency (ms)";
    List.iter
      (fun (used, total_ms) -> Paper.row "%-22.1f %20.1f" used total_ms)
      series
  in
  let s1020 = walk (10.0, 20.0) in
  let s2050 = walk (20.0, 50.0) in
  print_series "10:20" s1020;
  print_series "20:50" s2050;
  let u1, l1 = at_usage s1020 21.0 in
  let u2, l2 = at_usage s2050 21.0 in
  Paper.row
    "paper: latency climbs steeply once usage passes the MIDPOINT of the two thresholds (not dirty_ratio itself);";
  Paper.row
    "       at 21%% usage the 10:20 setting summed 3283 ms vs 13 ms for 20:50 - two orders of magnitude.";
  Paper.row
    "measured: near 21%% usage, 10:20 sums %.0f ms (at %.1f%%, already throttled) vs %.0f ms for 20:50 (at %.1f%%) - %.0fx apart"
    l1 u1 l2 u2
    (l1 /. Float.max 1.0 l2)

(* §8.1.3/Appendix B headline: time to hit the page-cache bottleneck at
   a sustained 100 Gbps with 60:80 thresholds. *)
let bottleneck_eta () =
  Paper.section "Appendix B: time to the page-cache bottleneck at 100 Gbps";
  let p = Hostmodel.Host_profile.default in
  let ingest = 100e9 /. 8.0 *. 200.0 /. 1538.0 in
  (* bytes/s staged: 200 of every 1514+24 wire bytes *)
  let net_fill = ingest -. p.Hostmodel.Host_profile.storage_drain_rate in
  let cache = Hostmodel.Host_profile.free_cache_bytes p in
  let midpoint = 0.70 *. cache in
  Paper.row
    "staging %.2f GB/s against %.1f GB/s of drain: midpoint (70%% of %.0f GB cache) reached in %.1f s"
    (ingest /. 1e9)
    (p.Hostmodel.Host_profile.storage_drain_rate /. 1e9)
    (cache /. 1e9) (midpoint /. net_fill);
  Paper.row "paper: 'in about 8-9 seconds we will hit a page cache bottleneck' for its faster NVMe + 8.5 GB/s ingest."
