(* Figs 11, 12, 13, 15 and the §8.2 headline numbers: the traffic
   profile gathered by running Patchwork occasions across the year and
   pushing every capture through the analysis pipeline.

   The paper ran 69 occasions over 13 months with 12-24 h of sampling
   each; this reproduction runs a scaled-down schedule (occasions spread
   over the year, a few hours each) — the distributions it measures are
   stationary properties of the workload model, so the scaling does not
   change their shape. *)

module Profile = Analysis.Profile
module Analyze = Analysis.Analyze

let default_occasions = 12
let default_hours = 3.0

let build_profile ?(occasions = default_occasions) ?(hours = default_hours) () =
  (* Stream occasions through the profile builder: each report's
     captures are absorbed into aggregates and then dropped, which is
     what keeps a multi-occasion profile in memory (the real captures
     ran to dozens of gigabytes). *)
  let builder = Profile.Builder.create () in
  for i = 0 to occasions - 1 do
    (* Spread occasions across the year, as the weekly runs were. *)
    let day = 20 + (i * 340 / max 1 occasions) in
    let start_time = float_of_int day *. Netcore.Timebase.day in
    let config =
      {
        Patchwork.Config.default with
        Patchwork.Config.samples_per_run = 4;
        max_frames_per_sample = 2_500;
      }
    in
    let report =
      Paper.run_profile_occasion ~config ~occasion_seed:(7000 + i) ~start_time
        ~duration:(hours *. Netcore.Timebase.hour) ()
    in
    Profile.Builder.add_report builder report
  done;
  Profile.Builder.finish builder

let profile_cache : Profile.t option ref = ref None

let get_profile () =
  match !profile_cache with
  | Some p -> p
  | None ->
    Printf.printf "(building year profile: %d occasions x %.0f h ...)\n%!"
      default_occasions default_hours;
    let p = build_profile () in
    profile_cache := Some p;
    p

let fig11 () =
  Paper.section "Fig 11: distinct headers and deepest stacks per site";
  let profile = get_profile () in
  let stats =
    List.filter (fun s -> s.Analyze.frames > 0) profile.Profile.header_stats
  in
  let sorted =
    List.sort (fun a b -> compare b.Analyze.distinct_headers a.Analyze.distinct_headers) stats
  in
  Paper.row "%-6s %16s %14s %9s" "site" "distinct headers" "deepest stack" "frames";
  List.iteri
    (fun i (s : Analyze.site_headers) ->
      Paper.row "S%-5d %16d %14d %9d" i s.Analyze.distinct_headers
        s.Analyze.deepest_stack s.Analyze.frames)
    sorted;
  let min_of f = List.fold_left (fun acc s -> min acc (f s)) max_int stats in
  let max_of f = List.fold_left (fun acc s -> max acc (f s)) 0 stats in
  Paper.row
    "paper: sites range from a handful to ~45 distinct headers; deepest stacks span 6-12.";
  Paper.row "measured: distinct %d-%d; deepest %d-%d"
    (min_of (fun s -> s.Analyze.distinct_headers))
    (max_of (fun s -> s.Analyze.distinct_headers))
    (min_of (fun s -> s.Analyze.deepest_stack))
    (max_of (fun s -> s.Analyze.deepest_stack))

let fig12 () =
  Paper.section "Fig 12: occurrence of protocol headers in testbed traffic";
  let profile = get_profile () in
  let show tok = Analyze.occurrence_of profile.Profile.occurrence tok in
  Paper.row "%-10s %10s" "protocol" "% frames";
  List.iter
    (fun tok -> Paper.row "%-10s %9.1f%% %s" tok (show tok) (Paper.bar 40 (show tok /. 160.0)))
    [ "eth"; "vlan"; "mpls"; "pw"; "ipv4"; "ipv6"; "tcp"; "udp"; "tls"; "ssh"; "vxlan" ];
  Paper.row
    "paper: Ethernet >100%% (nested frames); most frames VLAN+MPLS tagged; IPv4 dominates; IPv6 = 1.93%%; TCP dominates.";
  Paper.row "measured: eth %.1f%%, ipv4 %.1f%%, ipv6 %.2f%%, tcp %.1f%% vs udp %.1f%%"
    (show "eth") (show "ipv4") profile.Profile.ipv6_percent (show "tcp") (show "udp")

let fig13 () =
  Paper.section "Fig 13: distinct flows per 20s sample";
  let profile = get_profile () in
  let flows = profile.Profile.flows_per_sample in
  let edges = [| 1.0; 10.0; 100.0; 1000.0; 3000.0; 10_000.0; 20_000.0 |] in
  let h = Netcore.Histogram.create edges in
  Array.iter (fun v -> Netcore.Histogram.add h v) flows;
  let counts = Netcore.Histogram.counts h in
  Paper.row "%-18s %8s" "flows in sample" "samples";
  Array.iteri
    (fun i c ->
      Paper.row "%-18s %8d %s" (Netcore.Histogram.bin_label h i) c
        (Paper.bar 40 (float_of_int c /. float_of_int (max 1 (Array.length flows)))))
    counts;
  let below_3000 =
    Array.fold_left (fun acc v -> if v < 3000.0 then acc + 1 else acc) 0 flows
  in
  let above_20000 =
    Array.fold_left (fun acc v -> if v > 20_000.0 then acc + 1 else acc) 0 flows
  in
  Paper.row
    "paper: most samples contain fewer than 3,000 distinct flows; a handful exceed 20,000.";
  Paper.row "measured: %.1f%% of %d samples < 3000 flows; %d samples > 20000"
    (100.0 *. float_of_int below_3000 /. float_of_int (max 1 (Array.length flows)))
    (Array.length flows) above_20000

let fig15 () =
  Paper.section "Fig 15 (+ §8.2 frame sizes): frame-size distribution";
  let profile = get_profile () in
  let h = profile.Profile.size_histogram in
  let fracs = Netcore.Histogram.fractions h in
  Paper.row "%-16s %9s" "size bin (B)" "% frames";
  Array.iteri
    (fun i f ->
      Paper.row "%-16s %8.2f%% %s" (Netcore.Histogram.bin_label h i) (100.0 *. f)
        (Paper.bar 40 f))
    fracs;
  (* Paper's headline bins: 1519-2047 = 74.7%, 65-127 = 14.15%,
     128-255 = 5.79%.  Our edges: index 6 = [1519,2048), 1 = [64,128),
     2 = [128,256). *)
  Paper.row
    "paper: 1519-2047 B = 74.7%%, 65-127 B = 14.15%%, 128-255 B = 5.79%% of frames.";
  Paper.row "measured: 1519-2047 B = %.1f%%, 64-127 B = %.1f%%, 128-255 B = %.1f%%"
    (100.0 *. fracs.(6)) (100.0 *. fracs.(1)) (100.0 *. fracs.(2));
  (* Per-site breakdown, pseudonymized as in the paper. *)
  Paper.section "Fig 15 per-site jumbo share (pseudonymized)";
  List.iteri
    (fun i (_, sh) ->
      let sfr = Netcore.Histogram.fractions sh in
      let jumbo = sfr.(6) +. sfr.(7) +. sfr.(8) in
      if Netcore.Histogram.total sh > 0 then
        Paper.row "S%-4d jumbo %5.1f%% %s" i (100.0 *. jumbo) (Paper.bar 40 jumbo))
    profile.Profile.per_site_size

let section_8_2_flows () =
  Paper.section "§8.2 flow aggregation across samples";
  let profile = get_profile () in
  let summaries = profile.Profile.flow_summaries in
  let h = Analysis.Flows.size_log_histogram summaries in
  Paper.row "%-20s %8s" "flow size (bytes)" "flows";
  List.iter
    (fun (k, c) ->
      Paper.row "[2^%-2d, 2^%-2d)        %8d" k (k + 1) c)
    (Netcore.Histogram.Log2.buckets h);
  (match Analysis.Flows.top_n summaries 1 with
  | [ biggest ] ->
    Paper.row
      "paper: most flows are tiny, but some reach ~100 GB.  measured: largest flow %.1f GB across %d flows"
      (biggest.Analysis.Flows.bytes /. 1e9)
      (List.length summaries)
  | _ -> Paper.row "no flows observed")

let summary () =
  Paper.section "§8.2 profile summary";
  let profile = get_profile () in
  Format.printf "%a%!" Profile.pp_summary profile
