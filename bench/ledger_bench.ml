(* Loss-ledger bench: what the attribution ledger costs on the occasion
   wall, and whether its output is deterministic under parallelism.

   Two claims are asserted (exit 1 on any breach), so CI catches a
   regression in the attribution plane:

   - bounded overhead: replaying one occasion's worth of per-sample
     ledger folds (record_sample with exemplar keys, plus the occasion
     close with its conservation check) costs under 1% of the occasion's
     own wall — attribution must never be the reason to turn the ledger
     off;
   - determinism: the same seeded occasion run at pool sizes 1 and 2
     yields a byte-identical ledger (per-cause amounts AND exemplar
     reservoirs), because exemplar selection is priority-based, not
     arrival-order-based.

   Results land in BENCH_ledger.json.

   Knobs:
     PATCHWORK_BENCH_HOURS          simulated hours per occasion (default 1)
     PATCHWORK_BENCH_LEDGER_KEYS    exemplar keys offered per replayed sample
                                    (default 32) *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> (try float_of_string v with _ -> default)
  | None -> default

let hours = env_float "PATCHWORK_BENCH_HOURS" 1.0
let keys_per_sample = env_int "PATCHWORK_BENCH_LEDGER_KEYS" 32

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One seeded occasion with the ledger on; returns the occasion report,
   its wall, and the ledger's full JSON rendering (the determinism
   witness: amounts, residuals and exemplar lists all inside). *)
let run_occasion ~pool_size seed =
  Obs.Ledger.reset Obs.Ledger.default;
  let start_time = 30.0 *. Netcore.Timebase.day in
  let report, occasion_wall =
    wall (fun () ->
        Parallel.Pool.with_pool ~size:pool_size @@ fun pool ->
        let engine = Simcore.Engine.create ~start_time () in
        let fabric = Testbed.Fablib.create ~seed engine in
        let driver = Traffic.Driver.create ~pool fabric ~seed in
        let config =
          {
            Patchwork.Config.default with
            Patchwork.Config.samples_per_run = 4;
            max_frames_per_sample = 2000;
            pool_size = Parallel.Pool.size pool;
          }
        in
        Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~pool
          ~start_time
          ~duration:(hours *. Netcore.Timebase.hour) ())
  in
  let json = Obs.Export.Json.to_string (Obs.Ledger.to_json Obs.Ledger.default) in
  (report, occasion_wall, json)

let () =
  Printf.printf "ledger bench: %.1f simulated hour(s) per occasion\n%!" hours;

  (* --- the occasion itself (ledger on, as in production) --- *)
  let report, occasion_wall, json_pool1 = run_occasion ~pool_size:1 2024 in
  let samples = List.length (Patchwork.Coordinator.all_samples report) in
  Printf.printf "occasion: %.3fs wall, %d samples, %d sites\n%!" occasion_wall
    samples
    (List.length report.Patchwork.Coordinator.sites);

  (* --- determinism under parallelism: same seed, pool 2 --- *)
  let _, _, json_pool2 = run_occasion ~pool_size:2 2024 in
  let deterministic = String.equal json_pool1 json_pool2 in
  Printf.printf "determinism (pool 1 vs 2): identical=%b\n%!" deterministic;

  (* --- isolated ledger cost: replay the occasion's fold count --- *)
  (* Each replayed sample is a worst-ish case: every cause populated and
     [keys_per_sample] candidate exemplar keys competing for the
     reservoirs.  Conservation holds by construction, so the close path
     runs its full per-site check without raising. *)
  let bench_ledger = Obs.Ledger.create () in
  let sites = [| "STAR"; "TACC"; "UTAH"; "WASH"; "DALL"; "SALT" |] in
  let keys =
    Array.init 4096 (fun i ->
        Printf.sprintf "tcp 10.0.%d.%d:%d -> 10.1.%d.%d:443" (i / 251)
          (i mod 251)
          (1024 + (i mod 60000))
          (i / 193) (i mod 193))
  in
  let replays = max samples 1 in
  let (), ledger_wall =
    wall (fun () ->
        Obs.Ledger.begin_occasion bench_ledger ~at:0.0;
        for i = 0 to replays - 1 do
          let site = sites.(i mod Array.length sites) in
          let ks =
            List.init keys_per_sample (fun j ->
                keys.(((i * keys_per_sample) + j) mod Array.length keys))
          in
          Obs.Ledger.record_sample bench_ledger ~site ~offered_frames:10_000.0
            ~offered_bytes:8.0e6 ~stored_frames:9_000.0 ~stored_bytes:6.3e6
            ~keys:ks
            [
              (Obs.Ledger.Mirror_congestion, 400.0, 3.2e5);
              (Obs.Ledger.Switch_drop, 100.0, 8.0e4);
              (Obs.Ledger.Host_drop Obs.Ledger.Kernel, 450.0, 3.6e5);
              (Obs.Ledger.Page_cache_throttle, 50.0, 4.0e4);
              (Obs.Ledger.Truncated, 0.0, 9.0e5);
            ]
        done;
        ignore (Obs.Ledger.close_occasion bench_ledger))
  in
  let overhead_pct = 100.0 *. ledger_wall /. Float.max 1e-9 occasion_wall in
  let overhead_ok = overhead_pct < 1.0 in
  Printf.printf
    "ledger: %d folds (%d keys each) + close in %.6fs (%.4f%% of occasion, \
     ok=%b)\n%!"
    replays keys_per_sample ledger_wall overhead_pct overhead_ok;

  let oc = open_out "BENCH_ledger.json" in
  Printf.fprintf oc
    {|{
  "hours": %.2f,
  "occasion": { "wall_s": %.6f, "samples": %d },
  "ledger": { "folds": %d, "keys_per_fold": %d, "wall_s": %.6f, "overhead_pct": %.4f, "overhead_ok": %b },
  "deterministic": %b
}
|}
    hours occasion_wall samples replays keys_per_sample ledger_wall
    overhead_pct overhead_ok deterministic;
  close_out oc;
  Printf.printf "wrote BENCH_ledger.json\n%!";
  if not (overhead_ok && deterministic) then exit 1
