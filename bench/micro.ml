(* Bechamel micro-benchmarks of the hot paths: one Test.make per
   paper table/figure family, measuring the code that regenerates it. *)

open Bechamel
open Toolkit

let sample_frame =
  let rng = Netcore.Rng.create 7 in
  Traffic.Stack_builder.forward rng
    {
      Traffic.Stack_builder.vlan_id = 300;
      mpls_labels = [ 12345; 67890 ];
      use_pseudowire = true;
      use_vxlan = false;
      use_ipv6 = false;
      service = Option.get (Dissect.Services.by_name "tls");
    }
  |> fun stack -> Packet.Frame.make stack ~payload_len:400

let sample_bytes = Packet.Codec.encode sample_frame

let bench_encode =
  Test.make ~name:"codec.encode (tables 1-2 substrate)" (Staged.stage (fun () ->
      ignore (Packet.Codec.encode sample_frame)))

let bench_dissect =
  Test.make ~name:"dissector.dissect (figs 11-12 digest)" (Staged.stage (fun () ->
      ignore (Dissect.Dissector.dissect sample_bytes)))

let bench_acap =
  Test.make ~name:"acap.of_frame (fig 13/15 fast path)" (Staged.stage (fun () ->
      ignore (Dissect.Acap.of_frame ~ts:1.0 sample_frame)))

let bench_page_cache =
  Test.make ~name:"page_cache step (fig 14, tables 1-2)" (Staged.stage (fun () ->
      let c =
        Hostmodel.Page_cache.create ~free_cache_bytes:1e11 ~drain_rate:1e9
          ~dirty_background_ratio:60.0 ~dirty_ratio:80.0
      in
      for _ = 1 to 1000 do
        Hostmodel.Page_cache.write c 1.6e6;
        Hostmodel.Page_cache.advance c ~dt:1e-3
      done))

let bench_materialize =
  let spec =
    Traffic.Flow_model.make ~flow_id:1 ~template:sample_frame.Packet.Frame.headers
      ~frame_size:(Netcore.Dist.Constant 1000.0) ~avg_frame_size:1000.0
      ~byte_rate:1e6 ~start_time:0.0 ~duration:100.0 ~subflows:64 ()
  in
  let rng = Netcore.Rng.create 9 in
  Test.make ~name:"flow materialization (figs 11-15 captures)"
    (Staged.stage (fun () ->
         ignore (Traffic.Flow_model.frames_in_window spec rng ~start_time:0.0 ~end_time:1.0)))

let bench_filter =
  let filter =
    match Packet.Filter.parse "tcp and vlan 300 and not port 22" with
    | Ok f -> f
    | Error m -> failwith m
  in
  Test.make ~name:"filter.matches (FPGA offload path)" (Staged.stage (fun () ->
      ignore (Packet.Filter.matches filter sample_frame)))

let bench_anonymize =
  let anon = Hostmodel.Anonymize.create ~key:11 in
  Test.make ~name:"anonymize.frame (pre-processing)" (Staged.stage (fun () ->
      ignore (Hostmodel.Anonymize.frame anon sample_frame)))

let all_tests =
  [ bench_encode; bench_dissect; bench_acap; bench_page_cache;
    bench_materialize; bench_filter; bench_anonymize ]

let run () =
  Paper.section "Bechamel micro-benchmarks";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Paper.row "%-45s %12.1f ns/run" name est
          | _ -> Paper.row "%-45s (no estimate)" name)
        ols)
    all_tests
