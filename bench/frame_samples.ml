(* Random FABRIC-style frames for bench inputs. *)

let random rng =
  let services = [| "tls"; "iperf3"; "dns"; "ssh"; "mysql"; "nfs" |] in
  let service =
    Option.get (Dissect.Services.by_name (Netcore.Rng.choice rng services))
  in
  let stack =
    Traffic.Stack_builder.forward rng
      {
        Traffic.Stack_builder.vlan_id = 100 + Netcore.Rng.int rng 3900;
        mpls_labels = [ 16 + Netcore.Rng.int rng 100_000 ];
        use_pseudowire = Netcore.Rng.bernoulli rng 0.3;
        use_vxlan = Netcore.Rng.bernoulli rng 0.05;
        use_ipv6 = Netcore.Rng.bernoulli rng 0.02;
        service;
      }
  in
  Packet.Frame.make stack ~payload_len:(Netcore.Rng.int rng 160)
