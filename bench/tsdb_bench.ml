(* Telemetry store bench: append/query walls, downsample identity, and
   the persistence overhead against a real occasion.

   Three claims are asserted (exit 1 on any breach), so CI catches a
   regression in the telemetry plane:

   - identity: after downsampling compaction, every bucket's
     count/sum/min/max/last equals a recomputation over the raw points
     it replaced (same fold order, so bit-equality is expected), and a
     reopened store answers a range query byte-identically to the
     handle that wrote it;
   - bounded append: appending and flushing one occasion's worth of
     points costs under 2% of the occasion's own wall — persistence
     must never be the reason to turn telemetry off;
   - the range query scans segments, not the whole directory into
     memory: its wall is reported so a drift shows up in the JSON.

   Results land in BENCH_tsdb.json.

   Knobs:
     PATCHWORK_BENCH_TSDB_POINTS  synthetic points appended (default 200k)
     PATCHWORK_BENCH_TSDB_SERIES  distinct series spread over (default 64)
     PATCHWORK_BENCH_HOURS        simulated hours for the occasion (default 1) *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> (try float_of_string v with _ -> default)
  | None -> default

let n_points = env_int "PATCHWORK_BENCH_TSDB_POINTS" 200_000
let n_series = env_int "PATCHWORK_BENCH_TSDB_SERIES" 64
let hours = env_float "PATCHWORK_BENCH_HOURS" 1.0
let resolution = 3600.0

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let temp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  dir

(* The synthetic workload: [n_series] gauges sampled on a fixed cadence,
   values from the seeded generator.  Kept as an array so the identity
   check below can recompute aggregates independently. *)
let build_points () =
  let rng = Netcore.Rng.create 7 in
  let names =
    Array.init n_series (fun i ->
        (Printf.sprintf "bench_series_%02d" (i mod 32),
         if i mod 2 = 0 then [] else [ ("site", Printf.sprintf "S%d" (i / 2)) ]))
  in
  Array.init n_points (fun i ->
      let name, labels = names.(i mod n_series) in
      let at = 60.0 +. (float_of_int i *. 0.5) in
      (name, labels, at, Netcore.Rng.float rng *. 100.0))

let () =
  let module T = Obs.Tsdb in
  Printf.printf "tsdb bench: %d points over %d series\n%!" n_points n_series;
  let points = build_points () in

  (* --- append + flush wall over segment-sized batches --- *)
  let dir = temp_dir "patchwork-tsdb-bench" in
  let store = T.open_store ~dir () in
  let (), append_wall =
    wall (fun () ->
        Array.iteri
          (fun i (name, labels, at, v) ->
            T.append_point store ~name ~labels ~at v;
            if (i + 1) mod 20_000 = 0 then ignore (T.flush store))
          points;
        ignore (T.flush store))
  in
  let segments = List.length (T.segments_in_dir dir) in
  Printf.printf "append: %d points, %d segments, %.3fs (%.0f points/s)\n%!"
    n_points segments append_wall
    (float_of_int n_points /. Float.max 1e-9 append_wall);

  (* --- range query (middle half of the time span) --- *)
  let span_end = 60.0 +. (float_of_int n_points *. 0.5) in
  let pred = T.predicate ~since:(span_end /. 4.0) ~until:(span_end /. 2.0) () in
  let ranged, range_wall = wall (fun () -> T.query_store ~pred store) in
  let ranged_records =
    List.fold_left (fun acc (_, _, rs) -> acc + List.length rs) 0 ranged
  in
  Printf.printf "range query: %d series, %d records, %.3fs\n%!"
    (List.length ranged) ranged_records range_wall;

  (* --- restart identity: a fresh handle answers the same bytes --- *)
  let reopened = T.open_store ~dir () in
  let restart_identical = T.query_store ~pred reopened = ranged in
  Printf.printf "restart_identical=%b\n%!" restart_identical;

  (* --- downsample identity: compact, then recompute from raw --- *)
  let ds_dir = temp_dir "patchwork-tsdb-bench-ds" in
  let ds = T.open_store ~resolution ~dir:ds_dir () in
  Array.iter
    (fun (name, labels, at, v) -> T.append_point ds ~name ~labels ~at v)
    points;
  ignore (T.flush ds);
  let (), compact_wall = wall (fun () -> T.compact ds) in
  let newest =
    Array.fold_left (fun acc (_, _, at, _) -> Float.max acc at) 0.0 points
  in
  (* Raw points grouped per (series, bucket window), in append order —
     the same order the store's merge feeds its fold. *)
  let expected = Hashtbl.create 4096 in
  Array.iter
    (fun (name, labels, at, v) ->
      let start = T.bucket_start ~resolution at in
      if start +. resolution <= newest then begin
        let key = (name, List.sort compare labels, start) in
        let count, sum, mn, mx, _, _ =
          Option.value
            (Hashtbl.find_opt expected key)
            ~default:(0, 0.0, infinity, neg_infinity, nan, nan)
        in
        Hashtbl.replace expected key
          (count + 1, sum +. v, Float.min mn v, Float.max mx v, v, at)
      end)
    points;
  let checked = ref 0 in
  let downsample_identical =
    List.for_all
      (fun (name, labels, records) ->
        List.for_all
          (fun r ->
            if T.is_raw r then
              (* only the still-open tail bucket may stay raw *)
              T.bucket_start ~resolution r.T.t_at +. resolution > newest
            else begin
              incr checked;
              match Hashtbl.find_opt expected (name, labels, r.T.t_at) with
              | None -> false
              | Some (count, sum, mn, mx, last, last_at) ->
                r.T.t_count = count && r.T.t_sum = sum && r.T.t_min = mn
                && r.T.t_max = mx && r.T.t_last = last
                && r.T.t_last_at = last_at
            end)
          records)
      (T.query_store ds)
  in
  Printf.printf
    "downsample: %.3fs compact, %d buckets checked, identical=%b\n%!"
    compact_wall !checked downsample_identical;

  (* --- persistence overhead vs one real occasion --- *)
  let seed = 2024 in
  let start_time = 30.0 *. Netcore.Timebase.day in
  let report, occasion_wall =
    wall (fun () ->
        Parallel.Pool.with_pool ~size:2 @@ fun pool ->
        let engine = Simcore.Engine.create ~start_time () in
        let fabric = Testbed.Fablib.create ~seed engine in
        let driver = Traffic.Driver.create ~pool fabric ~seed in
        let config =
          {
            Patchwork.Config.default with
            Patchwork.Config.samples_per_run = 4;
            max_frames_per_sample = 2000;
            pool_size = Parallel.Pool.size pool;
          }
        in
        Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~pool
          ~start_time
          ~duration:(hours *. Netcore.Timebase.hour) ())
  in
  (* What the live service persists per occasion: every point the
     collector derives from the default registry the occasion just
     filled, appended and flushed as one segment. *)
  let occ_dir = temp_dir "patchwork-tsdb-bench-occ" in
  let occ_store = T.open_store ~dir:occ_dir () in
  let collector = Obs.Series.Collector.create () in
  ignore
    (Obs.Series.Collector.collect_points collector ~at:start_time
       Obs.Registry.default);
  let at =
    report.Patchwork.Coordinator.occasion_start
    +. report.Patchwork.Coordinator.occasion_duration
  in
  let occ_points =
    Obs.Series.Collector.collect_points collector ~at Obs.Registry.default
  in
  let flushed, persist_wall =
    wall (fun () ->
        List.iter
          (fun (name, labels, p) ->
            T.append_point occ_store ~name ~labels ~at:p.Obs.Series.at
              p.Obs.Series.value)
          occ_points;
        T.flush occ_store)
  in
  let overhead_pct = 100.0 *. persist_wall /. Float.max 1e-9 occasion_wall in
  let overhead_ok = overhead_pct < 2.0 in
  Printf.printf
    "occasion: %.3fs; persisted %d points in %.6fs (%.3f%% overhead, ok=%b)\n%!"
    occasion_wall flushed persist_wall overhead_pct overhead_ok;

  let identical = downsample_identical && restart_identical in
  let oc = open_out "BENCH_tsdb.json" in
  Printf.fprintf oc
    {|{
  "points": %d,
  "series": %d,
  "segments": %d,
  "append": { "wall_s": %.6f, "points_per_s": %.0f },
  "range_query": { "wall_s": %.6f, "series": %d, "records": %d },
  "downsample": { "compact_wall_s": %.6f, "buckets_checked": %d, "identical": %b },
  "restart_identical": %b,
  "occasion": { "wall_s": %.6f, "points": %d, "persist_wall_s": %.6f, "overhead_pct": %.4f, "overhead_ok": %b },
  "identical": %b
}
|}
    n_points n_series segments append_wall
    (float_of_int n_points /. Float.max 1e-9 append_wall)
    range_wall (List.length ranged) ranged_records compact_wall !checked
    downsample_identical restart_identical occasion_wall flushed persist_wall
    overhead_pct overhead_ok identical;
  close_out oc;
  Printf.printf "wrote BENCH_tsdb.json\n%!";
  rm_rf dir;
  rm_rf ds_dir;
  rm_rf occ_dir;
  if not (identical && overhead_ok) then exit 1
