(* Ablations of Patchwork's design choices (DESIGN.md):
   - the busiest-bias port-cycling heuristic vs the alternatives;
   - the capture methods under load;
   - iterative back-off vs all-or-nothing acquisition. *)

module Config = Patchwork.Config
module Coordinator = Patchwork.Coordinator
module Allocator = Testbed.Allocator

let cycling () =
  Paper.section "Ablation: port-selection heuristics";
  Paper.row "%-24s %14s %14s %12s" "policy" "active samples" "ports covered"
    "frames seen";
  let policies =
    [
      ("busiest-bias 1/4", Config.Busiest_bias 4);
      ("all ports round-robin", Config.All_ports_round_robin);
      ("uplinks only", Config.Uplinks_only);
    ]
  in
  List.iter
    (fun (name, policy) ->
      let start_time = 130.0 *. Netcore.Timebase.day in
      let config =
        {
          Config.default with
          Config.port_selection = policy;
          samples_per_run = 2;
          max_frames_per_sample = 100;
        }
      in
      let report =
        Paper.run_profile_occasion ~config ~pressure:false ~occasion_seed:77
          ~start_time ~duration:(3.0 *. Netcore.Timebase.hour) ()
      in
      let samples = Coordinator.all_samples report in
      let active =
        List.length
          (List.filter
             (fun (s : Patchwork.Capture.sample) ->
               s.Patchwork.Capture.stats.Patchwork.Capture.offered_frames > 0.0)
             samples)
      in
      let ports =
        List.sort_uniq compare
          (List.map
             (fun (s : Patchwork.Capture.sample) ->
               (s.Patchwork.Capture.sample_site, s.Patchwork.Capture.sample_port))
             samples)
      in
      let frames =
        List.fold_left
          (fun acc (s : Patchwork.Capture.sample) ->
            acc +. s.Patchwork.Capture.stats.Patchwork.Capture.offered_frames)
          0.0 samples
      in
      Paper.row "%-24s %6d / %-6d %14d %12.2e" name active (List.length samples)
        (List.length ports) frames)
    policies;
  Paper.row
    "(busiest-bias should see the most traffic while still covering many ports)"

let capture_methods () =
  Paper.section "Ablation: capture methods on a line-rate port";
  (* A port carrying 90 Gbps of 1514B frames, mirrored cleanly. *)
  let offered_pps = Netcore.Units.pps_of_bps 90e9 ~frame_bytes:1514 in
  Paper.row "%-22s %14s %12s" "method" "captured pps" "kept (%)";
  let methods =
    [
      ("tcpdump", Config.Tcpdump);
      ("DPDK 3 cores", Config.Dpdk { cores = 3 });
      ("DPDK 5 cores", Config.Dpdk { cores = 5 });
      ( "FPGA 1-in-8 + 3 cores",
        Config.Fpga_dpdk
          {
            cores = 3;
            fpga = { Hostmodel.Fpga_path.default_config with sample_1_in = 8 };
          } );
    ]
  in
  List.iter
    (fun (name, m) ->
      let capacity =
        match m with
        | Config.Tcpdump ->
          Hostmodel.Host_profile.kernel_capacity_pps Hostmodel.Host_profile.default
        | Config.Dpdk { cores } ->
          Hostmodel.Host_profile.dpdk_capacity_pps Hostmodel.Host_profile.default
            ~cores ~truncation:200
        | Config.Fpga_dpdk { cores; fpga } ->
          Hostmodel.Host_profile.dpdk_capacity_pps Hostmodel.Host_profile.default
            ~cores ~truncation:200
          *. float_of_int fpga.Hostmodel.Fpga_path.sample_1_in
      in
      let captured = Float.min offered_pps capacity in
      Paper.row "%-22s %14.2e %11.1f%%" name captured
        (100.0 *. captured /. offered_pps))
    methods;
  Paper.row
    "(the FPGA keeps every N-th frame at line rate, so the host sees a clean systematic sample)"

let backoff () =
  Paper.section "Ablation: iterative back-off vs all-or-nothing acquisition";
  let trials = 200 in
  let want = 2 in
  let run_policy with_backoff =
    let succeeded = ref 0 and got_any = ref 0 in
    for i = 1 to trials do
      let engine = Simcore.Engine.create () in
      let fabric = Testbed.Fablib.create ~seed:Paper.seed engine in
      Paper.apply_external_pressure fabric
        ~at:(float_of_int (i * 3) *. Netcore.Timebase.day)
        ~occasion_seed:i;
      let allocator = Testbed.Fablib.allocator fabric in
      let model = Testbed.Fablib.model fabric in
      let site =
        (List.nth (Testbed.Info_model.profilable_sites model)
           (i mod List.length (Testbed.Info_model.profilable_sites model)))
          .Testbed.Info_model.name
      in
      if with_backoff then begin
        let log = Patchwork.Logging.create () in
        match
          Patchwork.Backoff.acquire allocator ~log ~time:0.0 ~site
            ~desired_instances:want ()
        with
        | Patchwork.Backoff.Acquired { instances; _ } ->
          incr got_any;
          if instances = want then incr succeeded
        | Patchwork.Backoff.No_resources | Patchwork.Backoff.Backend_failed _ -> ()
      end
      else begin
        let request =
          {
            Allocator.site;
            vms = List.init want (fun _ -> Patchwork.Backoff.instance_vm);
          }
        in
        match Allocator.create_slice allocator request with
        | Ok _ ->
          incr got_any;
          incr succeeded
        | Error _ -> ()
      end
    done;
    (!succeeded, !got_any)
  in
  let full_b, any_b = run_policy true in
  let full_n, any_n = run_policy false in
  Paper.row "%-20s %18s %22s" "policy" "full acquisition" "profiled at all";
  Paper.row "%-20s %15d/%d %19d/%d" "with back-off" full_b trials any_b trials;
  Paper.row "%-20s %15d/%d %19d/%d" "all-or-nothing" full_n trials any_n trials;
  Paper.row
    "(back-off trades sample quality for availability: far more runs profile something)"

let autoscaling () =
  Paper.section "Future work: static allocation vs the runtime autoscaler";
  (* One site over 8 simulated hours with a mid-run resource crunch.
     Static Patchwork holds 2 instances throughout; the autoscaler grows
     while the site is free and backs off (the "nice" factor) when other
     researchers take the NICs. *)
  let run_mode autoscaled =
    let engine = Simcore.Engine.create () in
    let fabric = Testbed.Fablib.create ~seed:Paper.seed engine in
    let driver = Traffic.Driver.create fabric ~seed:81 in
    (* Use the best-equipped site so there is headroom to scale into. *)
    let site =
      (List.fold_left
         (fun best s ->
           if
             Testbed.Info_model.dedicated_nics s
             > Testbed.Info_model.dedicated_nics best
           then s
           else best)
         (List.hd (Testbed.Info_model.profilable_sites (Testbed.Fablib.model fabric)))
         (Testbed.Info_model.profilable_sites (Testbed.Fablib.model fabric)))
        .Testbed.Info_model.name
    in
    let config =
      {
        Patchwork.Config.default with
        Patchwork.Config.samples_per_run = 3;
        max_frames_per_sample = 5;
        instance_crash_prob = 0.0;
      }
    in
    let until = 8.0 *. 3600.0 in
    Testbed.Fablib.start_telemetry ~until fabric;
    Traffic.Driver.start driver ~until;
    (* The crunch arrives halfway through. *)
    Simcore.Engine.schedule engine ~delay:(4.0 *. 3600.0) (fun _ ->
        Testbed.Allocator.set_external_utilization
          (Testbed.Fablib.allocator fabric) ~site 1.0);
    let log = Patchwork.Logging.create () in
    let scaler =
      Patchwork.Autoscaler.create ~fabric
        ~resolver:(Traffic.Driver.resolver driver) ~config ~log
        ~rng:(Netcore.Rng.create 7) ~site
        ~policy:
          (if autoscaled then
             { Patchwork.Autoscaler.default_policy with
               Patchwork.Autoscaler.check_interval = 600.0 }
           else
             { Patchwork.Autoscaler.check_interval = 600.0;
               min_instances = 2; max_instances = 2; nice_free_nics = -1 })
    in
    Patchwork.Autoscaler.start scaler ~until;
    Simcore.Engine.run ~until engine;
    let samples = List.length (Patchwork.Autoscaler.samples scaler) in
    let slice_hours = Patchwork.Autoscaler.slice_seconds scaler /. 3600.0 in
    Patchwork.Autoscaler.shutdown scaler;
    (samples, slice_hours, List.length (Patchwork.Autoscaler.events scaler))
  in
  let s_samples, s_hours, _ = run_mode false in
  let a_samples, a_hours, a_events = run_mode true in
  Paper.row "%-12s %10s %14s %10s" "mode" "samples" "slice-hours" "decisions";
  Paper.row "%-12s %10d %14.1f %10s" "static x2" s_samples s_hours "-";
  Paper.row "%-12s %10d %14.1f %10d" "autoscaled" a_samples a_hours a_events;
  Paper.row
    "(the scaler converts idle NICs into extra coverage and yields them back during the crunch)"

let run () =
  cycling ();
  capture_methods ();
  backoff ();
  autoscaling ()
