(* Figs. 2-5: the testbed resource & infrastructure study (§5). *)

module Info_model = Testbed.Info_model
module Slice_process = Traffic.Slice_process

let fig2 () =
  Paper.section "Fig 2: distribution of ports across production FABRIC sites";
  let model = Info_model.generate ~seed:Paper.seed () in
  Paper.row "%-8s %8s %10s" "site" "uplinks" "downlinks";
  let total_up = ref 0 and total_down = ref 0 in
  Array.iter
    (fun (s : Info_model.site) ->
      total_up := !total_up + s.Info_model.uplinks;
      total_down := !total_down + s.Info_model.downlinks;
      Paper.row "%-8s %8d %10d" s.Info_model.name s.Info_model.uplinks
        s.Info_model.downlinks)
    model.Info_model.sites;
  Paper.row "%-8s %8d %10d" "TOTAL" !total_up !total_down;
  Paper.row
    "paper: most sites have a similar, small number of uplinks; every site has many more downlinks."

let year = 365.0 *. Netcore.Timebase.day

let slices = lazy (Slice_process.generate ~seed:Paper.seed ~horizon:year)

let fig3 () =
  Paper.section "Fig 3: slices vs number of sites used";
  let fractions = Slice_process.spread_fractions (Lazy.force slices) ~max_sites:10 in
  Paper.row "%-12s %10s %10s" "sites used" "fraction" "";
  Array.iteri
    (fun i f ->
      let label =
        if i = Array.length fractions - 1 then Printf.sprintf ">=%d" (i + 1)
        else string_of_int (i + 1)
      in
      Paper.row "%-12s %9.1f%% %s" label (100.0 *. f) (Paper.bar 40 f))
    fractions;
  Paper.row "paper: 66.5%% of all FABRIC slices use a single site.";
  Paper.row "measured: %.1f%%" (100.0 *. fractions.(0))

let fig4 () =
  Paper.section "Fig 4: duration of slices";
  let marks = [ 1.0; 6.0; 12.0; 24.0; 48.0; 96.0; 168.0; 336.0; 720.0 ] in
  let cdf = Slice_process.duration_cdf (Lazy.force slices) ~at_hours:marks in
  Paper.row "%-10s %8s" "<= hours" "CDF";
  List.iter (fun (h, f) -> Paper.row "%-10.0f %7.1f%% %s" h (100.0 *. f) (Paper.bar 40 f)) cdf;
  let at24 = List.assoc 24.0 cdf in
  Paper.row "paper: 75%% of slices last for 24 hours.  measured: %.1f%%"
    (100.0 *. at24)

let fig5 () =
  Paper.section "Fig 5: number of simultaneous slices over the year";
  let series =
    Slice_process.concurrency_series (Lazy.force slices)
      ~step:(6.0 *. Netcore.Timebase.hour) ~horizon:year
  in
  let mean, sd, maximum = Slice_process.concurrency_stats series in
  (* Print a weekly decimation of the series. *)
  Paper.row "%-6s %8s" "week" "slices";
  Array.iteri
    (fun i (t, v) ->
      if i mod 28 = 0 then
        Paper.row "%-6d %8d %s" (Netcore.Timebase.week_of t) v
          (Paper.bar 50 (float_of_int v /. 300.0)))
    series;
  Paper.row "paper: mean 85, stddev 52, max 272 simultaneous slices.";
  Paper.row "measured: mean %.0f, stddev %.0f, max %d" mean sd maximum
