(* The patchwork command-line tool.

   Subcommands mirror how the system is used:
     profile   run a profiling occasion on the simulated federation
     weekly    run the recurring profiling service; refresh the
               cumulative profile (CSVs + SVG figures)
     dissect   dissect a pcap/pcapng file and print abstract captures
     generate  synthesize a pcap of FABRIC-style traffic
     analyze   run the offline pipeline over a capture and emit CSVs
     query     scan a flow store written by weekly --flow-store
     report    render the per-occasion span tree + drop/loss attribution
     release   anonymize + truncate a capture for public release
     capacity  query the capture-path capacity models
     doctor    audit a live service or stored history: ledger
               conservation, segment validation, staleness, alerts

   profile/analyze/weekly accept --metrics-out FILE (and
   --metrics-format json|prom) to dump the run's metrics registry and
   span trees; report renders such a JSON snapshot. *)

open Cmdliner

let seed_arg =
  let doc = "Seed for the deterministic simulation." in
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc)

let domains_arg =
  let doc =
    "Domains for the offline pipeline (digest, flow aggregation, \
     gathering).  Results are identical at any value; only wall-clock \
     changes.  Defaults to the machine's core count minus one."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let with_domains domains f =
  let size =
    match domains with Some n -> max 1 n | None -> Parallel.Pool.default_size ()
  in
  Parallel.Pool.with_pool ~size f

(* --- metrics snapshot output (shared by profile/analyze/weekly) --- *)

let metrics_out_arg =
  let doc =
    "Write a metrics snapshot (registry counters/gauges/histograms plus \
     the finished span trees) to $(docv) when the command completes."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_format_arg =
  let doc =
    "Snapshot format: $(b,json) (metrics plus span tree, readable by the \
     $(b,report) subcommand) or $(b,prom) (Prometheus text exposition; \
     spans are omitted)."
  in
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
    & info [ "metrics-format" ] ~docv:"FMT" ~doc)

let write_metrics out format =
  match out with
  | None -> ()
  | Some path ->
    let snap = Obs.Registry.snapshot Obs.Registry.default in
    let body =
      match format with
      | `Json ->
        Obs.Export.to_json_string ~spans:(Obs.Span.roots Obs.Span.default) snap
      | `Prom -> Obs.Export.to_prometheus snap
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc body;
        output_char oc '\n');
    Printf.printf "wrote metrics snapshot to %s\n" path

(* --- flow cache (shared by analyze/weekly) --- *)

let flow_cache_bits_arg =
  let doc =
    "Route the digest through a per-worker flow cache with 2^$(docv) \
     slots: frames of already-seen flows skip full dissection and replay \
     the memoized classification.  Results are bit-identical at any \
     value; only speed changes.  0 (the default) disables the cache."
  in
  Arg.(value & opt int 0 & info [ "flow-cache-bits" ] ~docv:"N" ~doc)

let counter_value name =
  match Obs.Registry.value Obs.Registry.default name with
  | Some (Obs.Registry.Counter v) -> v
  | _ -> 0.0

(* One greppable summary line when the cache saw any traffic. *)
let print_flow_cache_summary () =
  let hits = counter_value "flow_cache_hits_total" in
  let misses = counter_value "flow_cache_misses_total" in
  let lookups = hits +. misses in
  if lookups > 0.0 then
    Printf.printf
      "flow cache: hits=%.0f misses=%.0f collisions=%.0f evictions=%.0f \
       hit-rate=%.1f%%\n"
      hits misses
      (counter_value "flow_cache_collisions_total")
      (counter_value "flow_cache_evictions_total")
      (100.0 *. hits /. lookups)

(* Companion line for the overlay cursor (the digest's default path):
   how many frames stayed on the zero-alloc fast path. *)
let print_overlay_summary () =
  let classified = counter_value "overlay_classified_total" in
  let fallbacks = counter_value "overlay_fallbacks_total" in
  let total = classified +. fallbacks in
  if total > 0.0 then
    Printf.printf "overlay dissection: %.0f frames, %.0f fallbacks\n" classified
      fallbacks

(* --- profile --- *)

let run_profile_occasion ~seed ~hours ~site ~max_frames pool =
  let start_time = 100.0 *. Netcore.Timebase.day in
  let engine = Simcore.Engine.create ~start_time () in
  let fabric = Testbed.Fablib.create ~seed engine in
  let driver = Traffic.Driver.create ~pool fabric ~seed in
  let mode =
    match site with
    | None -> Patchwork.Config.All_experiments
    | Some s ->
      Patchwork.Config.Single_experiment
        [ (s, Testbed.Fablib.all_ports fabric ~site:s) ]
  in
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.mode;
      max_frames_per_sample = max_frames;
      samples_per_run = 4;
      pool_size = Parallel.Pool.size pool;
    }
  in
  Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~pool ~start_time
    ~duration:(hours *. Netcore.Timebase.hour) ()

let profile_cmd =
  let hours =
    let doc = "Simulated duration of the occasion, in hours." in
    Arg.(value & opt float 2.0 & info [ "hours" ] ~docv:"H" ~doc)
  in
  let site =
    let doc =
      "Profile only this site (single-experiment style); default profiles \
       every profilable site (all-experiment mode)."
    in
    Arg.(value & opt (some string) None & info [ "site" ] ~docv:"SITE" ~doc)
  in
  let csv_dir =
    let doc = "Directory to write the Process-step CSV files into." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let max_frames =
    let doc = "Materialization budget per 20s sample." in
    Arg.(value & opt int 5000 & info [ "max-frames" ] ~docv:"N" ~doc)
  in
  let run seed hours site csv_dir max_frames domains metrics_out metrics_format =
    (with_domains domains @@ fun pool ->
     let report = run_profile_occasion ~seed ~hours ~site ~max_frames pool in
     List.iter
       (fun (s : Patchwork.Coordinator.site_report) ->
         Printf.printf "%-6s %-10s %4d samples\n" s.Patchwork.Coordinator.report_site
           (match s.Patchwork.Coordinator.outcome with
           | Patchwork.Coordinator.Site_success -> "success"
           | Patchwork.Coordinator.Site_degraded -> "degraded"
           | Patchwork.Coordinator.Site_failed m -> "failed: " ^ m
           | Patchwork.Coordinator.Site_incomplete m -> "incomplete: " ^ m)
           (List.length s.Patchwork.Coordinator.site_samples))
       report.Patchwork.Coordinator.sites;
     let profile = Analysis.Profile.of_reports ~pool [ report ] in
     Format.printf "%a" Analysis.Profile.pp_summary profile;
     match csv_dir with
     | None -> ()
     | Some dir ->
       let files = Analysis.Profile.write_csv_files profile ~dir in
       Printf.printf "wrote %s under %s\n" (String.concat ", " files) dir);
    write_metrics metrics_out metrics_format
  in
  let info =
    Cmd.info "profile" ~doc:"Run a profiling occasion on the simulated federation"
  in
  Cmd.v info
    Term.(
      const run $ seed_arg $ hours $ site $ csv_dir $ max_frames $ domains_arg
      $ metrics_out_arg $ metrics_format_arg)

(* --- dissect --- *)

let dissect_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.pcap")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "n" ] ~docv:"N" ~doc:"Records to print.")
  in
  let run file limit domains =
    with_domains domains @@ fun pool ->
    let acaps = Analysis.Digest.pcap_file_to_acaps ~pool file in
    Printf.printf "%d packets\n" (List.length acaps);
    List.iteri
      (fun i r ->
        if i < limit then print_endline (Dissect.Acap.to_line r))
      acaps;
    let occ = Analysis.Analyze.occurrence acaps in
    print_endline "occurrence:";
    List.iter (fun (tok, pct) -> Printf.printf "  %-10s %6.2f%%\n" tok pct) occ
  in
  let info = Cmd.info "dissect" ~doc:"Dissect a pcap file into abstract captures" in
  Cmd.v info Term.(const run $ file $ limit $ domains_arg)

(* --- generate --- *)

let generate_cmd =
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.pcap")
  in
  let count =
    Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Frames to generate.")
  in
  let service =
    Arg.(
      value
      & opt string "iperf3"
      & info [ "service" ] ~docv:"NAME" ~doc:"Application service to synthesize.")
  in
  let run seed out count service =
    let rng = Netcore.Rng.create seed in
    let svc =
      match Dissect.Services.by_name service with
      | Some s -> s
      | None -> failwith ("unknown service " ^ service)
    in
    let template =
      Traffic.Stack_builder.forward rng
        {
          Traffic.Stack_builder.vlan_id = 100 + Netcore.Rng.int rng 3900;
          mpls_labels = [ 16 + Netcore.Rng.int rng 100000 ];
          use_pseudowire = Netcore.Rng.bernoulli rng 0.3;
          use_vxlan = false;
          use_ipv6 = Netcore.Rng.bernoulli rng 0.02;
          service = svc;
        }
    in
    let spec =
      Traffic.Flow_model.make ~flow_id:1 ~template
        ~frame_size:(Netcore.Dist.Empirical [| (0.8, 1948.0); (0.2, 66.0) |])
        ~avg_frame_size:1572.0
        ~byte_rate:(float_of_int count *. 1572.0)
        ~start_time:0.0 ~duration:1.0 ~subflows:8 ()
    in
    let frames =
      Traffic.Flow_model.frames_in_window spec rng ~start_time:0.0 ~end_time:1.0
    in
    let w = Packet.Pcap.Writer.create () in
    List.iter (fun (ts, f) -> Packet.Pcap.Writer.add_frame w ~ts f) frames;
    Packet.Pcap.Writer.to_file w out;
    Printf.printf "wrote %d frames to %s\n" (Packet.Pcap.Writer.packet_count w) out
  in
  let info = Cmd.info "generate" ~doc:"Synthesize a pcap of FABRIC-style traffic" in
  Cmd.v info Term.(const run $ seed_arg $ out $ count $ service)

(* --- analyze --- *)

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.pcap")
  in
  let csv_dir =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR")
  in
  let fused =
    let doc =
      "Use the fused streaming digest$(i,\u{2192})flows fast path: dissected \
       packets stream straight into per-chunk flow shards without \
       materializing the abstract-capture list, so memory stays \
       proportional to the number of flows rather than packets.  Reports \
       flow-level statistics (and writes flows.csv with --csv)."
    in
    Arg.(value & flag & info [ "fused" ] ~doc)
  in
  let run_fused file csv_dir cache_bits pool =
    let flows = Analysis.Digest.pcap_file_to_flows ~pool ~cache_bits file in
    let total_frames =
      List.fold_left (fun acc (f : Analysis.Flows.summary) -> acc +. f.Analysis.Flows.frames) 0.0 flows
    in
    let total_bytes =
      List.fold_left (fun acc (f : Analysis.Flows.summary) -> acc +. f.Analysis.Flows.bytes) 0.0 flows
    in
    Printf.printf "%d flows, %.0f keyed frames, %.0f bytes (fused streaming path)\n"
      (List.length flows) total_frames total_bytes;
    List.iter
      (fun (f : Analysis.Flows.summary) ->
        Printf.printf "  %-48s %10.0f B %8.0f frames%s\n" f.Analysis.Flows.flow_key
          f.Analysis.Flows.bytes f.Analysis.Flows.frames
          (if f.Analysis.Flows.rst_seen then "  RST" else ""))
      (Analysis.Flows.top_n flows 10);
    match csv_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Analysis.Report.write_file
        (Filename.concat dir "flows.csv")
        (Analysis.Report.csv_of_rows
           ~header:[ "flow"; "frames"; "bytes"; "first"; "last"; "rst" ]
           (Analysis.Report.flow_rows flows));
      Printf.printf "wrote flows.csv under %s\n" dir
  in
  let run file csv_dir fused cache_bits domains metrics_out metrics_format =
    (with_domains domains @@ fun pool ->
    if fused then run_fused file csv_dir cache_bits pool
    else begin
    let acaps = Analysis.Digest.pcap_file_to_acaps ~pool ~cache_bits file in
    let occ = Analysis.Analyze.occurrence acaps in
    let h = Analysis.Analyze.frame_size_histogram acaps in
    Printf.printf "%d frames, %d distinct flows, %.2f%% IPv6, %.1f%% jumbo\n"
      (List.length acaps)
      (Analysis.Analyze.observed_flows acaps)
      (Analysis.Analyze.ipv6_percent acaps)
      (100.0 *. Analysis.Analyze.jumbo_fraction acaps);
    List.iter (fun (tok, pct) -> Printf.printf "  %-10s %6.2f%%\n" tok pct) occ;
    Array.iteri
      (fun i c ->
        if c > 0 then Printf.printf "  %-16s %d\n" (Netcore.Histogram.bin_label h i) c)
      (Netcore.Histogram.counts h);
    match csv_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Analysis.Report.write_file
        (Filename.concat dir "occurrence.csv")
        (Analysis.Report.csv_of_rows ~header:[ "protocol"; "percent" ]
           (Analysis.Report.occurrence_rows occ));
      Analysis.Report.write_file
        (Filename.concat dir "frame_sizes.csv")
        (Analysis.Report.csv_of_rows ~header:[ "bin"; "count"; "fraction" ]
           (Analysis.Report.histogram_rows h));
      Printf.printf "wrote CSVs under %s\n" dir
    end);
    print_flow_cache_summary ();
    print_overlay_summary ();
    write_metrics metrics_out metrics_format
  in
  let info = Cmd.info "analyze" ~doc:"Run the offline analysis over a pcap" in
  Cmd.v info
    Term.(
      const run $ file $ csv_dir $ fused $ flow_cache_bits_arg $ domains_arg
      $ metrics_out_arg $ metrics_format_arg)

(* --- weekly --- *)

let weekly_cmd =
  let weeks =
    Arg.(value & opt int 4 & info [ "weeks" ] ~docv:"N" ~doc:"Occasions to run.")
  in
  let start_day =
    Arg.(
      value & opt int 30
      & info [ "start-day" ] ~docv:"DAY" ~doc:"Day of year of the first occasion.")
  in
  let hours =
    Arg.(value & opt float 2.0 & info [ "hours" ] ~docv:"H" ~doc:"Hours per occasion.")
  in
  let out =
    Arg.(
      value & opt string "weekly-profile"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory for CSVs and figures.")
  in
  let serve_metrics =
    let doc =
      "Serve the live monitoring endpoints on 127.0.0.1:$(docv) while the \
       occasions run: /metrics (Prometheus), /metrics.json, /series.json, \
       /alerts.json, /logs.json, /trace.json, /healthz and /readyz.  Use \
       port 0 for an ephemeral port (printed at startup)."
    in
    Arg.(value & opt (some int) None & info [ "serve-metrics" ] ~docv:"PORT" ~doc)
  in
  let hold =
    let doc =
      "With $(b,--serve-metrics): keep serving after the last occasion until \
       SIGINT/SIGTERM, then shut down cleanly."
    in
    Arg.(value & flag & info [ "hold" ] ~doc)
  in
  let alert_rules =
    let doc =
      "Alert rule, e.g. $(b,'site_drop_rate > 0.05 for 3'); repeatable.  \
       Replaces the default rule set.  Syntax: <series> >|< <threshold> \
       [for <occasions>]."
    in
    Arg.(value & opt_all string [] & info [ "alert" ] ~docv:"RULE" ~doc)
  in
  let fail_on_alert =
    let doc =
      "Exit nonzero when any alert rule is still firing after the last \
       occasion (for CI gates and cron wrappers).  Implies the alert \
       evaluator even without $(b,--serve-metrics)."
    in
    Arg.(value & flag & info [ "fail-on-alert" ] ~doc)
  in
  let pipeline =
    let doc =
      "Overlap each week's analysis with the next week's simulation: the \
       occasions run on a background domain one stage ahead of the \
       profile builder (each stage gets its own domain pool).  The \
       cumulative profile is byte-identical to the sequential run; only \
       wall-clock changes."
    in
    Arg.(value & flag & info [ "pipeline" ] ~doc)
  in
  let pipeline_depth =
    let doc =
      "With $(b,--pipeline): how many finished occasions may wait in the \
       hand-off queue before the simulation stage blocks."
    in
    Arg.(value & opt int 1 & info [ "pipeline-depth" ] ~docv:"N" ~doc)
  in
  let flow_store =
    let doc =
      "Stream every occasion's flow records to sorted binary segment files \
       under $(docv) as the occasions complete, spilling to disk whenever \
       the in-memory buffer exceeds $(b,--spill-threshold) records.  Query \
       the store afterwards with the $(b,query) subcommand."
    in
    Arg.(value & opt (some string) None & info [ "flow-store" ] ~docv:"DIR" ~doc)
  in
  let spill_threshold =
    let doc =
      "With $(b,--flow-store): flow records to buffer in memory before \
       spilling a segment file (bounds peak heap for long runs)."
    in
    Arg.(value & opt int 200_000 & info [ "spill-threshold" ] ~docv:"N" ~doc)
  in
  let tsdb =
    let doc =
      "Persist every collected telemetry point to an append-only \
       time-series store under $(docv), one sealed segment per occasion.  \
       History survives restarts (alerts are re-armed from the stored \
       tail), /series.json serves it with $(b,?since=)/$(b,?until=), and \
       $(b,report --history) renders it offline."
    in
    Arg.(value & opt (some string) None & info [ "tsdb" ] ~docv:"DIR" ~doc)
  in
  let retention =
    let doc =
      "With $(b,--tsdb): drop stored records older than $(docv) behind the \
       newest stored timestamp (e.g. $(b,30d), $(b,12w); default: keep \
       everything)."
    in
    Arg.(value & opt (some string) None & info [ "retention" ] ~docv:"DUR" ~doc)
  in
  let downsample =
    let doc =
      "With $(b,--tsdb): compact raw points older than the current window \
       into $(docv)-wide buckets carrying count/sum/min/max/last (e.g. \
       $(b,1h), $(b,1d); default: keep raw points forever)."
    in
    Arg.(value & opt (some string) None & info [ "downsample" ] ~docv:"RES" ~doc)
  in
  let scrape =
    let doc =
      "Federate a per-site exposition endpoint: scrape \
       $(b,SITE=HOST:PORT[/path]) after every occasion, rewrite its \
       samples with a site label, and derive federation-wide series \
       (plus up{site} / scrape_duration_seconds{site} staleness \
       tracking).  Repeatable; a dead target is marked up=0 and never \
       blocks the others."
    in
    Arg.(value & opt_all string [] & info [ "scrape" ] ~docv:"TARGET" ~doc)
  in
  let run seed weeks start_day hours out domains metrics_out metrics_format
      serve_metrics hold alert_rules fail_on_alert pipeline pipeline_depth
      flow_store spill_threshold flow_cache_bits tsdb retention downsample
      scrape =
    (* The paper's operational mode: Patchwork runs weekly and keeps a
       cumulative testbed-wide profile (the public dashboard's data).
       One pool serves every occasion. *)
    (* The per-sample digests sit behind the coordinator, so the cache
       setting travels as the process-wide default. *)
    if flow_cache_bits > 0 then
      Analysis.Digest.set_default_cache_bits flow_cache_bits;
    let rules =
      match alert_rules with
      | [] -> Live.default_rules
      | rs ->
        List.map
          (fun r ->
            match Obs.Alerts.rule_of_string r with
            | Ok rule -> rule
            | Error msg -> failwith ("--alert: " ^ msg))
          rs
    in
    (* One bounded ring log shared across occasions so /logs.json can
       tail the whole service, not just the newest occasion. *)
    let service_log = Patchwork.Logging.create ~capacity:4096 () in
    let service_event ~component msg =
      Patchwork.Logging.log service_log ~time:(Obs.Clock.now ())
        ~level:Patchwork.Logging.Warning ~component msg
    in
    let duration_of flag = function
      | None -> None
      | Some s -> (
        match Netcore.Units.parse_duration s with
        | Ok v -> Some v
        | Error msg -> failwith (flag ^ ": " ^ msg))
    in
    let tsdb_store =
      Option.map
        (fun dir ->
          Obs.Tsdb.open_store
            ?retention:(duration_of "--retention" retention)
            ?resolution:(duration_of "--downsample" downsample)
            ~log:(service_event ~component:"tsdb") ~dir ())
        tsdb
    in
    let federation =
      match scrape with
      | [] -> None
      | targets ->
        Some
          (Obs.Federation.create ~log:(service_event ~component:"federation")
             (List.map
                (fun s ->
                  match Obs.Federation.target_of_string s with
                  | Ok t -> t
                  | Error msg -> failwith ("--scrape: " ^ msg))
                targets))
    in
    let live =
      (* --tsdb / --scrape without --serve-metrics still need the
         occasion hook (and re-armed alerts): run the service on an
         ephemeral port without announcing it. *)
      match (serve_metrics, tsdb_store, federation) with
      | None, None, None when not fail_on_alert -> None
      | port, _, _ ->
        let baseline_at = float_of_int start_day *. Netcore.Timebase.day in
        let l =
          Live.start ~rules ~baseline_at ?tsdb:tsdb_store ?federation
            ~port:(Option.value ~default:0 port)
            ~log:service_log ()
        in
        if port <> None then
          Printf.printf "serving metrics on http://127.0.0.1:%d\n%!"
            (Live.port l);
        Some l
    in
    (with_domains domains @@ fun pool ->
    let builder = Analysis.Profile.Builder.create ~log:service_log () in
    let store =
      Option.map
        (fun dir ->
          Analysis.Flow_store.Writer.create ~spill_records:spill_threshold
            ~dir ())
        flow_store
    in
    (* One simulated week: fresh engine/fabric/driver, one occasion.
       Independent across weeks, which is what lets the pipelined mode
       run week w+1 while week w is still being absorbed. *)
    let run_week ~pool w =
      let day = start_day + (7 * w) in
      let start_time = float_of_int day *. Netcore.Timebase.day in
      let engine = Simcore.Engine.create ~start_time () in
      let fabric = Testbed.Fablib.create ~seed engine in
      let driver = Traffic.Driver.create ~pool fabric ~seed:(seed + (31 * w)) in
      let config =
        {
          Patchwork.Config.default with
          Patchwork.Config.samples_per_run = 4;
          max_frames_per_sample = 3000;
          pool_size = Parallel.Pool.size pool;
          (* The flow cache lives on the digest path, which only runs
             when samples carry real pcap bytes. *)
          emit_pcap = flow_cache_bits > 0;
        }
      in
      let report =
        Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~pool
          ~log:service_log ~start_time
          ~duration:(hours *. Netcore.Timebase.hour) ()
      in
      let ok =
        List.length
          (List.filter
             (fun (s : Patchwork.Coordinator.site_report) ->
               match s.Patchwork.Coordinator.outcome with
               | Patchwork.Coordinator.Site_success
               | Patchwork.Coordinator.Site_degraded ->
                 true
               | _ -> false)
             report.Patchwork.Coordinator.sites)
      in
      Printf.printf "week of day %3d: %d/%d sites profiled, %d samples\n%!" day ok
        (List.length report.Patchwork.Coordinator.sites)
        (List.length (Patchwork.Coordinator.all_samples report));
      report
    in
    if pipeline then begin
      (* Two-stage pipeline: simulation on a background domain with its
         own pool, analysis on this domain with [pool] (a pool must be
         owned by one domain at a time).  The hand-off queue preserves
         week order, so the profile matches the sequential loop. *)
      with_domains domains @@ fun sim_pool ->
      let stats =
        Patchwork.Pipeline.run ~depth:pipeline_depth ~n:weeks
          ~produce:(fun w -> run_week ~pool:sim_pool w)
          ~consume:(fun _ report ->
            Analysis.Profile.Builder.add_report ~pool ?flow_store:store builder
              report)
          ()
      in
      Printf.printf
        "pipeline: %d weeks in %.2fs wall (simulate %.2fs, analyze %.2fs, \
         overlap %.2fs, max queue depth %d)\n%!"
        stats.Patchwork.Pipeline.items stats.Patchwork.Pipeline.wall_s
        stats.Patchwork.Pipeline.produce_busy_s
        stats.Patchwork.Pipeline.consume_busy_s
        stats.Patchwork.Pipeline.overlap_s stats.Patchwork.Pipeline.max_depth
    end
    else
      for w = 0 to weeks - 1 do
        let report = run_week ~pool w in
        Analysis.Profile.Builder.add_report ~pool ?flow_store:store builder
          report
      done;
    let profile = Analysis.Profile.Builder.finish builder in
    Format.printf "%a" Analysis.Profile.pp_summary profile;
    let csvs = Analysis.Profile.write_csv_files profile ~dir:out in
    let figs = Analysis.Figures.write_profile_figures profile ~dir:out in
    Printf.printf "wrote %d CSVs and %d figures under %s\n"
      (List.length csvs) (List.length figs) out;
    match (store, flow_store) with
    | Some w, Some dir ->
      let segs = Analysis.Flow_store.Writer.finish w in
      Printf.printf "flow store: %d segments, %d bytes under %s\n"
        (List.length segs)
        (Analysis.Flow_store.Writer.spilled_bytes w)
        dir
    | _ -> ());
    print_flow_cache_summary ();
    print_overlay_summary ();
    write_metrics metrics_out metrics_format;
    let actives =
      match live with
      | None -> []
      | Some l ->
        if hold then begin
          Printf.printf "holding (SIGINT/SIGTERM to exit)\n%!";
          Live.hold_until_signal ()
        end;
        let actives = Live.active_alerts l in
        Live.stop l;
        if serve_metrics <> None then Printf.printf "metrics server stopped\n%!";
        actives
    in
    (match tsdb_store with
    | Some store ->
      Printf.printf "tsdb: %d segments under %s\n%!"
        (List.length (Obs.Tsdb.segments store))
        (Obs.Tsdb.dir store)
    | None -> ());
    if fail_on_alert && actives <> [] then begin
      Printf.printf "active alerts at exit:\n";
      List.iter
        (fun ((r : Obs.Alerts.rule), labels, v) ->
          Printf.printf "  %s%s value=%g\n" r.Obs.Alerts.rule_name
            (match labels with
            | [] -> ""
            | ls ->
              "{"
              ^ String.concat ","
                  (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
              ^ "}")
            v)
        actives;
      exit 1
    end
  in
  let info =
    Cmd.info "weekly"
      ~doc:"Run the weekly profiling service and refresh the cumulative profile"
  in
  Cmd.v info
    Term.(
      const run $ seed_arg $ weeks $ start_day $ hours $ out $ domains_arg
      $ metrics_out_arg $ metrics_format_arg $ serve_metrics $ hold
      $ alert_rules $ fail_on_alert $ pipeline $ pipeline_depth $ flow_store
      $ spill_threshold $ flow_cache_bits_arg $ tsdb $ retention $ downsample
      $ scrape)

(* --- query --- *)

let query_cmd =
  let store_dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"STORE_DIR")
  in
  let since =
    let doc = "Keep flows last seen at or after $(docv) (simulated seconds)." in
    Arg.(value & opt (some float) None & info [ "since" ] ~docv:"T" ~doc)
  in
  let until =
    let doc = "Keep flows first seen at or before $(docv) (simulated seconds)." in
    Arg.(value & opt (some float) None & info [ "until" ] ~docv:"T" ~doc)
  in
  let site =
    let doc = "Keep only flows captured at $(docv)." in
    Arg.(value & opt (some string) None & info [ "site" ] ~docv:"SITE" ~doc)
  in
  let proto =
    let doc = "Keep only flows of this transport (tcp, udp, icmp, ...)." in
    Arg.(value & opt (some string) None & info [ "proto" ] ~docv:"PROTO" ~doc)
  in
  let top =
    let doc =
      "Report the $(docv) largest flows by bytes (0 returns every flow; \
       with a positive $(docv) the scan never materializes the full flow \
       table)."
    in
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"K" ~doc)
  in
  let dist =
    let doc = "Also print the log2 flow-size distribution." in
    Arg.(value & flag & info [ "dist" ] ~doc)
  in
  let keys =
    let doc =
      "Look up this exact flow key instead of scanning with predicates \
       (repeatable).  The drill-down for the loss ledger's exemplars: \
       paste a key from $(b,/lossmap.json) or $(b,doctor) to see how much \
       of the flow still made it into storage."
    in
    Arg.(value & opt_all string [] & info [ "key" ] ~docv:"KEY" ~doc)
  in
  let run store_dir since until site proto top dist keys metrics_out
      metrics_format =
    (let segs = Analysis.Flow_store.segments_in_dir store_dir in
     if segs = [] then
       failwith
         (store_dir
        ^ ": no .pwfs segments (write some with weekly --flow-store DIR)");
     if keys <> [] then
       match Analysis.Flow_store.lookup ~keys segs with
       | exception Analysis.Flow_store.Corrupt msg -> failwith msg
       | found ->
         List.iter
           (fun (key, summary) ->
             match summary with
             | None -> Printf.printf "  %-48s (no record in the store)\n" key
             | Some (f : Analysis.Flows.summary) ->
               Printf.printf "  %-48s %14.0f B %10.0f frames  %7.0fs-%-7.0fs%s\n"
                 f.Analysis.Flows.flow_key f.Analysis.Flows.bytes
                 f.Analysis.Flows.frames f.Analysis.Flows.first_seen
                 f.Analysis.Flows.last_seen
                 (if f.Analysis.Flows.rst_seen then "  RST" else ""))
           found
     else
     let pred = Analysis.Flow_store.predicate ?since ?until ?site ?proto () in
     match
       if top > 0 then Analysis.Flow_store.query ~pred ~top segs
       else Analysis.Flow_store.query ~pred segs
     with
     | exception Analysis.Flow_store.Corrupt msg -> failwith msg
     | res ->
       let st = res.Analysis.Flow_store.stats in
       Printf.printf
         "store: %d segments; scanned %d records (%d matched) in %.3fs (%.0f \
          records/s)\n"
         st.Analysis.Flow_store.segments_scanned
         st.Analysis.Flow_store.records_scanned
         st.Analysis.Flow_store.records_matched st.Analysis.Flow_store.wall_s
         (if st.Analysis.Flow_store.wall_s > 0.0 then
            float_of_int st.Analysis.Flow_store.records_scanned
            /. st.Analysis.Flow_store.wall_s
          else 0.0);
       Printf.printf "flows: %d distinct, %.0f weighted frames, %.0f weighted \
                      bytes\n"
         st.Analysis.Flow_store.distinct_flows
         st.Analysis.Flow_store.total_frames st.Analysis.Flow_store.total_bytes;
       let shown = res.Analysis.Flow_store.flows in
       if shown <> [] then begin
         Printf.printf "top %d flows by bytes:\n" (List.length shown);
         List.iter
           (fun (f : Analysis.Flows.summary) ->
             Printf.printf "  %-48s %14.0f B %10.0f frames  %7.0fs-%-7.0fs%s\n"
               f.Analysis.Flows.flow_key f.Analysis.Flows.bytes
               f.Analysis.Flows.frames f.Analysis.Flows.first_seen
               f.Analysis.Flows.last_seen
               (if f.Analysis.Flows.rst_seen then "  RST" else ""))
           shown
       end;
       if dist then begin
         Printf.printf "flow size distribution (log2 bytes):\n";
         List.iter
           (fun (k, c) -> Printf.printf "  [2^%-2d, 2^%-2d) %8d\n" k (k + 1) c)
           (Netcore.Histogram.Log2.buckets res.Analysis.Flow_store.size_hist)
       end);
    write_metrics metrics_out metrics_format
  in
  let info =
    Cmd.info "query"
      ~doc:
        "Scan a flow store (segments written by weekly --flow-store) with \
         time/site/proto predicates, top-k and size distributions — without \
         rehydrating whole occasions"
  in
  Cmd.v info
    Term.(
      const run $ store_dir $ since $ until $ site $ proto $ top $ dist $ keys
      $ metrics_out_arg $ metrics_format_arg)

(* --- release --- *)

let release_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"IN.pcap") in
  let output = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT.pcap") in
  let key =
    Arg.(
      value & opt int 0x5EED
      & info [ "key" ] ~docv:"KEY"
          ~doc:"Anonymization key; the same key maps addresses consistently \
                across releases.")
  in
  let snaplen =
    Arg.(
      value & opt int 200
      & info [ "snaplen" ] ~docv:"BYTES" ~doc:"Truncate payloads to this length.")
  in
  let run input output key snaplen =
    (* Prepare a capture for public release: prefix-preserving address
       anonymization plus payload truncation, as the paper proposes for
       periodically publishing testbed traces. *)
    let ic = open_in_bin input in
    let buf =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          let b = Bytes.create len in
          really_input ic b 0 len;
          b)
    in
    let packets = Packet.Pcapng.read_any buf in
    let anon = Hostmodel.Anonymize.create ~key in
    let w = Packet.Pcap.Writer.create ~snaplen () in
    let rewritten = ref 0 and passed = ref 0 in
    List.iter
      (fun (p : Packet.Pcap.packet) ->
        let d = Dissect.Dissector.dissect ~orig_len:p.Packet.Pcap.orig_len p.Packet.Pcap.data in
        match Packet.Frame.validate d.Dissect.Dissector.headers with
        | Ok () when d.Dissect.Dissector.headers <> [] ->
          (* Re-encode the anonymized headers; payload bytes are dropped
             beyond the snaplen anyway. *)
          let frame =
            Packet.Frame.make d.Dissect.Dissector.headers
              ~payload_len:d.Dissect.Dissector.payload_len
          in
          let frame = Hostmodel.Anonymize.frame anon frame in
          incr rewritten;
          Packet.Pcap.Writer.add w ~ts:p.Packet.Pcap.ts
            ~orig_len:p.Packet.Pcap.orig_len
            (Packet.Codec.encode frame)
        | Ok () | Error _ ->
          (* Frames we cannot re-encode are blanked rather than leaked. *)
          incr passed;
          Packet.Pcap.Writer.add w ~ts:p.Packet.Pcap.ts
            ~orig_len:p.Packet.Pcap.orig_len
            (Bytes.make (min snaplen (Bytes.length p.Packet.Pcap.data)) '\x00'))
      packets;
    Packet.Pcap.Writer.to_file w output;
    Printf.printf "released %d packets to %s (%d anonymized, %d blanked)\n"
      (List.length packets) output !rewritten !passed
  in
  let info =
    Cmd.info "release"
      ~doc:"Anonymize and truncate a capture for public release"
  in
  Cmd.v info Term.(const run $ input $ output $ key $ snaplen)

(* --- report --- *)

module J = Obs.Export.Json

let rec print_span ~indent j =
  let str k = Option.bind (J.member k j) J.to_str in
  let num k = Option.bind (J.member k j) J.to_float in
  let name = Option.value ~default:"?" (str "name") in
  let wall = Option.value ~default:0.0 (num "wall_s") in
  let minor = Option.value ~default:0.0 (num "minor_words") in
  let notes =
    match J.member "notes" j with
    | Some (J.Obj kvs) ->
      String.concat ""
        (List.map
           (fun (k, v) ->
             Printf.sprintf "  %s=%s" k (Option.value ~default:"?" (J.to_str v)))
           kvs)
    | _ -> ""
  in
  let label = String.make indent ' ' ^ name in
  Printf.printf "  %-34s %10.3f ms %14.0f minor words%s\n" label (wall *. 1e3)
    minor notes;
  match J.member "children" j with
  | Some (J.Arr children) -> List.iter (print_span ~indent:(indent + 2)) children
  | _ -> ()

(* Per-site drop/loss attribution from the capture counters: where along
   the mirror -> switch -> host path frames were lost (Fig. 9's loss
   taxonomy, aggregated per site). *)
let print_attribution metrics =
  let sites = Hashtbl.create 8 in
  let site_row site =
    match Hashtbl.find_opt sites site with
    | Some r -> r
    | None ->
      let r = Array.make 4 0.0 in
      Hashtbl.add sites site r;
      r
  in
  let col = function
    | "capture_offered_frames_total" -> Some 0
    | "capture_switch_dropped_frames_total" -> Some 1
    | "capture_host_dropped_frames_total" -> Some 2
    | "capture_frames_total" -> Some 3
    | _ -> None
  in
  List.iter
    (fun m ->
      match Option.bind (J.member "name" m) J.to_str with
      | None -> ()
      | Some name -> (
        match
          ( col name,
            Option.bind (J.member "labels" m) (J.member "site")
            |> Fun.flip Option.bind J.to_str,
            Option.bind (J.member "value" m) J.to_float )
        with
        | Some c, Some site, Some v -> (site_row site).(c) <- v
        | _ -> ()))
    metrics;
  if Hashtbl.length sites = 0 then
    print_endline "no capture counters in snapshot (analyze-only run)"
  else begin
    print_endline "drop/loss attribution:";
    Printf.printf "  %-8s %12s %12s %12s %12s %8s\n" "site" "offered"
      "switch-drop" "host-drop" "captured" "loss%";
    let rows =
      List.sort compare
        (Hashtbl.fold (fun site r acc -> (site, r) :: acc) sites [])
    in
    let totals = Array.make 4 0.0 in
    List.iter
      (fun (site, (r : float array)) ->
        Array.iteri (fun i v -> totals.(i) <- totals.(i) +. v) r;
        let loss =
          if r.(0) > 0.0 then 100.0 *. (r.(1) +. r.(2)) /. r.(0) else 0.0
        in
        Printf.printf "  %-8s %12.0f %12.0f %12.0f %12.0f %7.2f%%\n" site r.(0)
          r.(1) r.(2) r.(3) loss)
      rows;
    let loss =
      if totals.(0) > 0.0 then
        100.0 *. (totals.(1) +. totals.(2)) /. totals.(0)
      else 0.0
    in
    Printf.printf "  %-8s %12.0f %12.0f %12.0f %12.0f %7.2f%%\n" "TOTAL"
      totals.(0) totals.(1) totals.(2) totals.(3) loss
  end

(* The loss waterfall: the ledger's per-site, per-cause attribution from
   the snapshot's [ledger_*] counters, rendered as offered -> each cause
   -> stored so the whole budget is visible at once.  Silent when the
   snapshot predates the ledger (or it was disabled). *)
let print_loss_waterfall metrics =
  let member_str k m = Option.bind (J.member k m) J.to_str in
  let label k m =
    Option.bind (J.member "labels" m) (J.member k) |> Fun.flip Option.bind J.to_str
  in
  let value m = Option.bind (J.member "value" m) J.to_float in
  (* site -> (offered, stored, (cause -> frames)) *)
  let sites = Hashtbl.create 8 in
  let site_row site =
    match Hashtbl.find_opt sites site with
    | Some r -> r
    | None ->
      let r = (ref 0.0, ref 0.0, Hashtbl.create 8) in
      Hashtbl.add sites site r;
      r
  in
  let violations = ref 0.0 in
  List.iter
    (fun m ->
      match (member_str "name" m, label "site" m, value m) with
      | Some "ledger_conservation_violations_total", _, Some v ->
        violations := !violations +. v
      | Some "ledger_offered_frames_total", Some site, Some v ->
        let offered, _, _ = site_row site in
        offered := !offered +. v
      | Some "ledger_stored_frames_total", Some site, Some v ->
        let _, stored, _ = site_row site in
        stored := !stored +. v
      | Some "ledger_attributed_frames_total", Some site, Some v -> (
        match label "cause" m with
        | None -> ()
        | Some cause ->
          let _, _, causes = site_row site in
          Hashtbl.replace causes cause
            (v +. Option.value ~default:0.0 (Hashtbl.find_opt causes cause)))
      | _ -> ())
    metrics;
  if Hashtbl.length sites > 0 then begin
    print_newline ();
    print_endline "loss waterfall (attribution ledger):";
    let rows =
      List.sort compare
        (Hashtbl.fold (fun site r acc -> (site, r) :: acc) sites [])
    in
    List.iter
      (fun (site, (offered, stored, causes)) ->
        let pct v = if !offered > 0.0 then 100.0 *. v /. !offered else 0.0 in
        Printf.printf "  %-8s offered %14.0f frames\n" site !offered;
        let cause_rows =
          List.sort (fun (_, a) (_, b) -> compare b a)
            (Hashtbl.fold (fun c v acc -> (c, v) :: acc) causes [])
        in
        List.iter
          (fun (cause, v) ->
            if v > 0.0 then
              Printf.printf "  %-8s   - %-20s %10.0f  %6.2f%%\n" "" cause v
                (pct v))
          cause_rows;
        Printf.printf "  %-8s   = stored %18.0f  %6.2f%%\n" "" !stored
          (pct !stored))
      rows;
    if !violations > 0.0 then
      Printf.printf
        "  WARNING: %.0f conservation violation%s recorded (run doctor)\n"
        !violations
        (if !violations = 1.0 then "" else "s")
  end

let metrics_value metrics name =
  List.fold_left
    (fun acc m ->
      match
        (Option.bind (J.member "name" m) J.to_str,
         Option.bind (J.member "value" m) J.to_float)
      with
      | Some n, Some v when n = name -> acc +. v
      | _ -> acc)
    0.0 metrics

(* Flow-cache hit rate from the snapshot's digest counters; silent when
   the run never enabled the cache. *)
let print_cache_line metrics =
  let value = metrics_value metrics in
  let hits = value "flow_cache_hits_total" in
  let misses = value "flow_cache_misses_total" in
  let lookups = hits +. misses in
  if lookups > 0.0 then
    Printf.printf
      "flow cache: %.0f/%.0f lookups hit (%.1f%% hit rate, %.0f collisions)\n"
      hits lookups
      (100.0 *. hits /. lookups)
      (value "flow_cache_collisions_total")

(* Zero-alloc fast-path counters: overlay cursor classifications (with
   how many frames fell back to the record dissector) and arrival
   events the driver handed to the engine as pre-sorted batches.
   Silent when the run never exercised them. *)
let print_fastpath_lines metrics =
  let value = metrics_value metrics in
  let classified = value "overlay_classified_total" in
  let fallbacks = value "overlay_fallbacks_total" in
  let total = classified +. fallbacks in
  if total > 0.0 then
    Printf.printf
      "overlay dissection: %.0f/%.0f frames on the cursor fast path (%.0f \
       fallbacks, %.2f%%)\n"
      classified total fallbacks
      (100.0 *. fallbacks /. total);
  let batched = value "engine_events_batched_total" in
  if batched > 0.0 then
    Printf.printf "engine events batched: %.0f\n" batched

let render_report doc =
  (match J.member "spans" doc with
  | Some (J.Arr (_ :: _ as spans)) ->
    print_endline "spans:";
    List.iter (print_span ~indent:0) spans
  | _ -> print_endline "no spans in snapshot");
  print_newline ();
  match J.member "metrics" doc with
  | Some (J.Arr metrics) ->
    print_attribution metrics;
    print_loss_waterfall metrics;
    print_cache_line metrics;
    print_fastpath_lines metrics
  | _ -> print_endline "no metrics in snapshot"

let report_cmd =
  let infile =
    let doc =
      "Render a previously written JSON metrics snapshot (the file from \
       $(b,--metrics-out)) instead of running a fresh occasion."
    in
    Arg.(value & opt (some file) None & info [ "in" ] ~docv:"FILE" ~doc)
  in
  let hours =
    let doc = "Simulated occasion duration when running live, in hours." in
    Arg.(value & opt float 2.0 & info [ "hours" ] ~docv:"H" ~doc)
  in
  let site =
    let doc = "Profile only this site when running live." in
    Arg.(value & opt (some string) None & info [ "site" ] ~docv:"SITE" ~doc)
  in
  let live_port =
    let doc =
      "Scrape a running $(b,weekly --serve-metrics) service on \
       127.0.0.1:$(docv) and render its rolling series as sparklines \
       plus the active alerts, instead of a span-tree report."
    in
    Arg.(value & opt (some int) None & info [ "live" ] ~docv:"PORT" ~doc)
  in
  let history =
    let doc =
      "Render trends from a $(b,weekly --tsdb) store directory (raw \
       points and downsampled buckets) without needing a running \
       service."
    in
    Arg.(value & opt (some string) None & info [ "history" ] ~docv:"DIR" ~doc)
  in
  let hist_since =
    let doc = "With $(b,--history): keep points at or after $(docv)." in
    Arg.(value & opt (some float) None & info [ "since" ] ~docv:"T" ~doc)
  in
  let hist_until =
    let doc = "With $(b,--history): keep points at or before $(docv)." in
    Arg.(value & opt (some float) None & info [ "until" ] ~docv:"T" ~doc)
  in
  let hist_name =
    let doc = "With $(b,--history): render only the named series." in
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"SERIES" ~doc)
  in
  let run seed hours site infile live_port history hist_since hist_until
      hist_name domains =
    match (live_port, history) with
    | Some port, _ -> Live.render_live ~port
    | None, Some dir ->
      Live.render_history ?since:hist_since ?until:hist_until ?name:hist_name
        ~dir ()
    | None, None ->
    let doc =
      match infile with
      | Some path ->
        let ic = open_in_bin path in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (match J.parse text with
        | Ok doc -> doc
        | Error msg -> failwith (path ^ ": " ^ msg))
      | None ->
        (* Run one occasion and report on its live spans and counters. *)
        (with_domains domains @@ fun pool ->
         ignore (run_profile_occasion ~seed ~hours ~site ~max_frames:2000 pool));
        Obs.Export.json_of_snapshot
          ~spans:(Obs.Span.roots Obs.Span.default)
          (Obs.Registry.snapshot Obs.Registry.default)
    in
    render_report doc
  in
  let info =
    Cmd.info "report"
      ~doc:
        "Render the per-occasion span tree and drop/loss attribution from a \
         metrics snapshot (or from a fresh occasion), scrape a live \
         service with $(b,--live), or render stored telemetry trends \
         with $(b,--history)"
  in
  Cmd.v info
    Term.(
      const run $ seed_arg $ hours $ site $ infile $ live_port $ history
      $ hist_since $ hist_until $ hist_name $ domains_arg)

(* --- doctor --- *)

let doctor_cmd =
  let live =
    let doc =
      "Audit a running $(b,weekly --serve-metrics) service on \
       127.0.0.1:$(docv): liveness/readiness, loss-ledger conservation \
       recomputed from $(b,/lossmap.json), active alerts, federation \
       staleness and cache sanity."
    in
    Arg.(value & opt (some int) None & info [ "live" ] ~docv:"PORT" ~doc)
  in
  let history =
    let doc =
      "Audit an on-disk $(b,weekly --tsdb) store under $(docv): validate \
       every segment byte-for-byte, recompute ledger conservation from \
       the persisted series, and check federation staleness and cache \
       sanity from the stored history."
    in
    Arg.(value & opt (some string) None & info [ "history" ] ~docv:"DIR" ~doc)
  in
  let flow_store =
    let doc =
      "Also validate the flow-store segments under $(docv) (written by \
       $(b,weekly --flow-store))."
    in
    Arg.(value & opt (some string) None & info [ "flow-store" ] ~docv:"DIR" ~doc)
  in
  let run live history flow_store =
    exit (Doctor.run ?live ?history ?flow_store ())
  in
  let info =
    Cmd.info "doctor"
      ~doc:
        "Run the platform's health checks — ledger conservation, segment \
         validation, federation staleness, alerts, cache sanity — against \
         a live service ($(b,--live)) and/or stored history \
         ($(b,--history)); PASS/WARN/FAIL per check, nonzero exit on any \
         FAIL"
  in
  Cmd.v info Term.(const run $ live $ history $ flow_store)

(* --- capacity --- *)

let capacity_cmd =
  let frame =
    Arg.(value & opt int 1514 & info [ "frame" ] ~docv:"BYTES")
  in
  let run frame =
    Printf.printf "capture-path capacity for %dB frames:\n" frame;
    Printf.printf "  tcpdump: %.2f Gbps\n"
      (Hostmodel.Kernel_path.lossless_bound ~frame_size:frame () /. 1e9);
    List.iter
      (fun (cores, trunc) ->
        let config =
          { Hostmodel.Dpdk_path.default_config with
            Hostmodel.Dpdk_path.cores; truncation = trunc }
        in
        Printf.printf "  DPDK %2d cores, %3dB truncation: %.2f Gbps\n" cores trunc
          (Hostmodel.Dpdk_path.capacity_rate config ~frame_size:frame /. 1e9))
      [ (3, 64); (5, 200); (10, 200); (15, 64) ]
  in
  let info = Cmd.info "capacity" ~doc:"Query the capture-path capacity models" in
  Cmd.v info Term.(const run $ frame)

let () =
  let doc = "Patchwork: traffic capture and analysis for a federated testbed" in
  let info = Cmd.info "patchwork" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ profile_cmd; weekly_cmd; dissect_cmd; generate_cmd; analyze_cmd;
            query_cmd; report_cmd; release_cmd; capacity_cmd; doctor_cmd ]))
