(* Live exposition for the long-running weekly service: the HTTP
   endpoint set served while occasions run, the series/alert wiring
   behind it, and the scrape-side rendering used by `report --live`.

   The pieces compose across libraries: Obs.Http is the blocking server
   (obs depends only on unix), Parallel.Background provides the extra
   domain, and Patchwork.Coordinator's completion hook feeds the
   collector after every occasion. *)

module J = Obs.Export.Json
module Logging = Patchwork.Logging

let default_rules =
  [
    Obs.Alerts.rule ~series:"site_drop_rate" ~op:Obs.Alerts.Gt ~threshold:0.05
      ~for_count:3 ();
    Obs.Alerts.rule ~series:"pool_queue_wait_p99" ~op:Obs.Alerts.Gt
      ~threshold:0.5 ~for_count:2 ();
  ]

let json_response j =
  Obs.Http.response ~content_type:"application/json" (J.to_string j ^ "\n")

let logs_json log req =
  let seq =
    match List.assoc_opt "seq" req.Obs.Http.query with
    | Some s -> (
      match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 0)
    | None -> 0
  in
  let entries = Logging.drain_since log ~seq in
  json_response
    (J.Obj
       [
         ("next_seq", J.Num (float_of_int (Logging.next_seq log)));
         ( "entries",
           J.Arr
             (List.map
                (fun (i, e) ->
                  J.Obj
                    [
                      ("seq", J.Num (float_of_int i));
                      ("time", J.Num e.Logging.time);
                      ("level", J.Str (Logging.level_name e.Logging.level));
                      ("component", J.Str e.Logging.component);
                      ("event", J.Str e.Logging.event);
                    ])
                entries) );
       ])

let routes ?tsdb ~log ~collector ~alerts () =
  let snapshot () = Obs.Registry.snapshot Obs.Registry.default in
  Obs.Http.routes
    [
      ( "/metrics",
        fun _ ->
          Obs.Http.response
            ~content_type:"text/plain; version=0.0.4; charset=utf-8"
            (Obs.Export.to_prometheus (snapshot ())) );
      ( "/metrics.json",
        fun _ ->
          Obs.Http.response ~content_type:"application/json"
            (Obs.Export.to_json_string
               ~spans:(Obs.Span.roots Obs.Span.default)
               (snapshot ())
            ^ "\n") );
      ("/series.json", Obs.Endpoints.series ?tsdb ~collector);
      ("/lossmap.json", fun req -> Obs.Endpoints.lossmap req);
      ("/alerts.json", fun _ -> json_response (Obs.Alerts.to_json alerts));
      ("/logs.json", logs_json log);
      ( "/trace.json",
        fun _ ->
          Obs.Http.response ~content_type:"application/json"
            (Obs.Export.trace_events_string ~process_name:"patchwork"
               (Obs.Span.roots Obs.Span.default)
            ^ "\n") );
      ("/healthz", fun _ -> Obs.Http.response "ok\n");
      ( "/readyz",
        fun _ ->
          if Patchwork.Coordinator.ready () then Obs.Http.response "ready\n"
          else Obs.Http.response ~status:503 "starting\n" );
    ]

type t = {
  server : Obs.Http.server;
  bg : Parallel.Background.t;
  collector : Obs.Series.Collector.t;
  alerts : Obs.Alerts.t;
  log : Logging.t;
  hook : Patchwork.Coordinator.hook_handle;
  tsdb : Obs.Tsdb.t option;
}

let start ?(rules = default_rules) ?baseline_at ?tsdb ?federation ~port ~log ()
    =
  let collector = Obs.Series.Collector.create () in
  let alerts = Obs.Alerts.create rules in
  (* Re-arm from persisted history before anything fresh is collected:
     replaying the last for-count-many points per series reconstructs
     firing/consecutive state, so a killed service resumes alerting
     exactly where an uninterrupted one would be. *)
  (match tsdb with
  | Some store ->
    let deepest =
      List.fold_left (fun acc r -> max acc r.Obs.Alerts.for_count) 1 rules
    in
    let replayed =
      Obs.Alerts.rearm alerts (Obs.Tsdb.tail_store ~n:(deepest + 1) store)
    in
    List.iter
      (fun e ->
        Logging.log log ~time:e.Obs.Alerts.ev_at ~level:Logging.Info
          ~component:"alerts"
          ("re-armed: " ^ Obs.Alerts.event_to_string e))
      replayed
  | None -> ());
  (* Baseline before the first occasion so its deltas become the first
     points rather than vanishing into the baseline. *)
  (match baseline_at with
  | Some at -> Obs.Series.Collector.collect collector ~at Obs.Registry.default
  | None -> ());
  let hook =
    Patchwork.Coordinator.on_occasion_complete (fun report ->
      let at =
        report.Patchwork.Coordinator.occasion_start
        +. report.Patchwork.Coordinator.occasion_duration
      in
      let local =
        Obs.Series.Collector.collect_points collector ~at Obs.Registry.default
      in
      (* Federation round: pull every per-site endpoint, then merge the
         site-labelled derived points into the central collector. *)
      let federated =
        match federation with
        | None -> []
        | Some fed ->
          let pts = Obs.Federation.scrape fed ~at in
          List.iter
            (fun (name, labels, p) ->
              Obs.Series.Collector.push_point collector ~name ~labels
                ~at:p.Obs.Series.at p.Obs.Series.value)
            pts;
          pts
      in
      (* Persist every point collected this occasion; each flush seals
         one segment, so history survives a kill at any boundary. *)
      (match tsdb with
      | Some store ->
        List.iter
          (fun (name, labels, p) ->
            Obs.Tsdb.append_point store ~name ~labels ~at:p.Obs.Series.at
              p.Obs.Series.value)
          (local @ federated);
        ignore (Obs.Tsdb.flush store)
      | None -> ());
      let events = Obs.Alerts.evaluate alerts ~at collector in
      List.iter
        (fun e ->
          Logging.log log ~time:at ~level:Logging.Warning ~component:"alerts"
            (Obs.Alerts.event_to_string e))
        events)
  in
  let server =
    Obs.Http.create ~port (routes ?tsdb ~log ~collector ~alerts ())
  in
  let bg =
    Parallel.Background.spawn ~name:"metrics-http" (fun () ->
        Obs.Http.run server)
  in
  { server; bg; collector; alerts; log; hook; tsdb }

let port t = Obs.Http.port t.server
let active_alerts t = Obs.Alerts.active t.alerts

let stop t =
  (* Unhook first: occasions run after stop must not feed the dead
     collector, and repeated start/stop must not accumulate hooks. *)
  Patchwork.Coordinator.remove_hook t.hook;
  (* A graceful stop seals any buffered history; a kill relies on the
     unsealed-segment recovery path instead. *)
  (match t.tsdb with Some store -> ignore (Obs.Tsdb.flush store) | None -> ());
  Obs.Http.stop t.server;
  match Parallel.Background.join t.bg with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "metrics server failed: %s\n%!" (Printexc.to_string e)

(* Block until SIGINT/SIGTERM, polling so the handler runs promptly. *)
let hold_until_signal () =
  let stop_requested = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler;
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.2
  done

(* --- the scrape side: `report --live PORT` --- *)

let series_of_json j =
  match J.member "series" j with
  | Some (J.Arr items) ->
    List.filter_map
      (fun item ->
        match Option.bind (J.member "name" item) J.to_str with
        | None -> None
        | Some name ->
          let labels =
            match J.member "labels" item with
            | Some (J.Obj kvs) ->
              List.filter_map
                (fun (k, v) ->
                  Option.map (fun v -> (k, v)) (J.to_str v))
                kvs
            | _ -> []
          in
          let points =
            match J.member "points" item with
            | Some (J.Arr ps) ->
              List.filter_map
                (fun p ->
                  match
                    ( Option.bind (J.member "at" p) J.to_float,
                      Option.bind (J.member "value" p) J.to_float )
                  with
                  | Some at, Some value -> Some (at, value)
                  | _ -> None)
                ps
            | _ -> []
          in
          Some (name, labels, points))
      items
  | _ -> []

let label_suffix = function
  | [] -> ""
  | ls ->
    "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls) ^ "}"

let render_live ~port =
  (match Obs.Http.get ~port "/series.json" with
  | Error msg -> failwith (Printf.sprintf "scrape 127.0.0.1:%d failed: %s" port msg)
  | Ok (status, _) when status <> 200 ->
    failwith (Printf.sprintf "/series.json answered %d" status)
  | Ok (_, body) -> (
    match J.parse body with
    | Error msg -> failwith ("/series.json: " ^ msg)
    | Ok doc ->
      let all = series_of_json doc in
      if all = [] then print_endline "no series yet (waiting for the second occasion)"
      else begin
        print_endline "live series:";
        List.iter
          (fun (name, labels, points) ->
            (* Rebuild a window so the rendering is exactly the library's. *)
            let s = Obs.Series.create ~name ~labels () in
            List.iter (fun (at, v) -> Obs.Series.push s ~at v) points;
            let last =
              match Obs.Series.last s with
              | Some p -> Printf.sprintf "%g" p.Obs.Series.value
              | None -> "-"
            in
            Printf.printf "  %-42s %s %s\n"
              (name ^ label_suffix labels)
              (Obs.Series.sparkline ~width:32 s)
              last)
          all;
        (* Federation staleness: a dead scraped site must be visible in
           the report, not only in the raw up{site} gauge. *)
        let last_value wanted site =
          List.find_map
            (fun (n, ls, pts) ->
              if n = wanted && List.assoc_opt "site" ls = Some site then
                match List.rev pts with (_, v) :: _ -> Some v | [] -> None
              else None)
            all
        in
        let fed_sites =
          List.filter_map
            (fun (n, ls, _) ->
              if n = "up" then List.assoc_opt "site" ls else None)
            all
          |> List.sort_uniq compare
        in
        if fed_sites <> [] then begin
          print_endline "federated sites:";
          List.iter
            (fun site ->
              let age =
                match last_value "scrape_age_seconds" site with
                | Some a -> Printf.sprintf " (scrape age %gs)" a
                | None -> ""
              in
              match last_value "up" site with
              | Some v when v >= 1.0 -> Printf.printf "  %-16s up%s\n" site age
              | Some _ -> Printf.printf "  %-16s DOWN%s\n" site age
              | None -> ())
            fed_sites
        end
      end));
  match Obs.Http.get ~port "/alerts.json" with
  | Error msg -> Printf.printf "alerts unavailable: %s\n" msg
  | Ok (_, body) -> (
    match J.parse body with
    | Error msg -> Printf.printf "alerts unparseable: %s\n" msg
    | Ok doc -> (
      match J.member "active" doc with
      | Some (J.Arr []) | None -> print_endline "alerts: none active"
      | Some (J.Arr actives) ->
        print_endline "alerts active:";
        List.iter
          (fun a ->
            let rule =
              Option.value ~default:"?"
                (Option.bind (J.member "rule" a) J.to_str)
            in
            let value =
              Option.value ~default:Float.nan
                (Option.bind (J.member "value" a) J.to_float)
            in
            let labels =
              match J.member "labels" a with
              | Some (J.Obj kvs) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun v -> (k, v)) (J.to_str v))
                  kvs
              | _ -> []
            in
            Printf.printf "  %s%s value=%g\n" rule (label_suffix labels) value)
          actives
      | Some _ -> ()))

(* --- the history side: `report --history DIR` --- *)

(* Render trends straight from a store directory, no service needed.
   Reads the segment files as they are (an unsealed tail left by a
   killed service is readable; its partial final record is skipped), so
   this never mutates the store a live service may still own. *)
let render_history ?since ?until ?name ~dir () =
  let segments = Obs.Tsdb.segments_in_dir dir in
  if segments = [] then
    Printf.printf "no history segments under %s\n" dir
  else begin
    let pred = Obs.Tsdb.predicate ?since ?until ?name () in
    let groups = Obs.Tsdb.query ~pred segments in
    if groups = [] then print_endline "no series match"
    else begin
      Printf.printf "history (%d segment%s):\n" (List.length segments)
        (if List.length segments = 1 then "" else "s");
      List.iter
        (fun (sname, labels, records) ->
          let s = Obs.Series.create ~name:sname ~labels () in
          let raw = ref 0 and buckets = ref 0 in
          List.iter
            (fun r ->
              if Obs.Tsdb.is_raw r then incr raw else incr buckets;
              let at, v = Obs.Tsdb.point_of_record r in
              Obs.Series.push s ~at v)
            records;
          let last =
            match Obs.Series.last s with
            | Some p -> Printf.sprintf "%g" p.Obs.Series.value
            | None -> "-"
          in
          Printf.printf "  %-42s %s %s (%d raw, %d buckets)\n"
            (sname ^ label_suffix labels)
            (Obs.Series.sparkline ~width:32 s)
            last !raw !buckets)
        groups
    end
  end
