(* `patchwork_cli doctor`: the platform auditing its own measurement
   quality.  A battery of health checks — loss-ledger conservation,
   federation staleness, active alerts, segment-store validation sweeps,
   cache sanity — rendered as PASS/WARN/FAIL lines, against either a
   live service (`--live PORT`, over the HTTP endpoints) or an on-disk
   history (`--history DIR`, over the tsdb segments directly).

   The conservation checks recompute `offered = stored + Σ attributed`
   from the numbers themselves (never trusting a stored "conserved"
   flag), so doctor agrees with the in-process ledger by construction
   or says why not. *)

module J = Obs.Export.Json

type status = Pass | Warn | Fail

type check = { c_name : string; c_status : status; c_detail : string }

let check c_name c_status c_detail = { c_name; c_status; c_detail }

let status_label = function Pass -> "PASS" | Warn -> "WARN" | Fail -> "FAIL"

let render checks =
  List.iter
    (fun c ->
      Printf.printf "%s  %-24s %s\n" (status_label c.c_status) c.c_name
        c.c_detail)
    checks;
  let count st = List.length (List.filter (fun c -> c.c_status = st) checks) in
  let fails = count Fail in
  Printf.printf "doctor: %d check%s, %d passed, %d warning%s, %d failed\n"
    (List.length checks)
    (if List.length checks = 1 then "" else "s")
    (count Pass) (count Warn)
    (if count Warn = 1 then "" else "s")
    fails;
  fails

(* Relative conservation test, same rule as the ledger's close. *)
let conserved ~offered residual =
  Float.abs residual <= Obs.Ledger.tolerance *. Float.max 1.0 offered

let num name j = Option.bind (J.member name j) J.to_float
let str name j = Option.bind (J.member name j) J.to_str

(* --- live checks (scraping 127.0.0.1:port) -------------------------- *)

let fetch ~port path =
  match Obs.Http.get ~port path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok (status, body) -> Ok (status, body)

let check_endpoint ~port ~name path =
  match fetch ~port path with
  | Error msg -> check name Fail msg
  | Ok (200, _) -> check name Pass (path ^ " answers 200")
  | Ok (503, _) -> check name Warn (path ^ " answers 503 (not ready yet)")
  | Ok (status, _) ->
    check name Fail (Printf.sprintf "%s answers %d" path status)

(* Recompute conservation for every occasion × site in a lossmap
   payload; [] means no closed occasion yet. *)
let lossmap_violations doc =
  match J.member "occasions" doc with
  | Some (J.Arr occasions) ->
    let violations = ref [] in
    let sites = ref 0 in
    List.iter
      (fun occ ->
        let seq =
          int_of_float (Option.value ~default:(-1.0) (num "seq" occ))
        in
        match J.member "sites" occ with
        | Some (J.Arr ss) ->
          List.iter
            (fun s ->
              incr sites;
              let site = Option.value ~default:"?" (str "site" s) in
              let field outer inner =
                Option.value ~default:0.0
                  (Option.bind (J.member outer s) (num inner))
              in
              let attr inner =
                match J.member "causes" s with
                | Some (J.Arr cs) ->
                  List.fold_left
                    (fun acc c -> acc +. Option.value ~default:0.0 (num inner c))
                    0.0 cs
                | _ -> 0.0
              in
              let test kind =
                let offered = field "offered" kind in
                let residual = offered -. field "stored" kind -. attr kind in
                if not (conserved ~offered residual) then
                  violations :=
                    Printf.sprintf "occasion %d site %s: %s residual %g" seq
                      site kind residual
                    :: !violations
              in
              test "frames";
              test "bytes")
            ss
        | _ -> ())
      occasions;
    Ok (!sites, List.rev !violations)
  | _ -> Error "no occasions member in /lossmap.json"

let check_lossmap ~port =
  let name = "ledger conservation" in
  match fetch ~port "/lossmap.json" with
  | Error msg -> check name Fail msg
  | Ok (status, _) when status <> 200 ->
    check name Fail (Printf.sprintf "/lossmap.json answers %d" status)
  | Ok (_, body) -> (
    match J.parse body with
    | Error msg -> check name Fail ("/lossmap.json unparseable: " ^ msg)
    | Ok doc -> (
      match lossmap_violations doc with
      | Error msg -> check name Fail msg
      | Ok (0, _) -> check name Warn "no closed occasion in the ledger yet"
      | Ok (sites, []) ->
        check name Pass
          (Printf.sprintf "offered = stored + attributed over %d site entr%s"
             sites
             (if sites = 1 then "y" else "ies"))
      | Ok (_, (v :: _ as all)) ->
        check name Fail
          (Printf.sprintf "%d violation%s; first: %s" (List.length all)
             (if List.length all = 1 then "" else "s")
             v)))

let check_alerts ~port =
  let name = "active alerts" in
  match fetch ~port "/alerts.json" with
  | Error msg -> check name Fail msg
  | Ok (_, body) -> (
    match J.parse body with
    | Error msg -> check name Fail ("/alerts.json unparseable: " ^ msg)
    | Ok doc -> (
      match J.member "active" doc with
      | Some (J.Arr []) | None -> check name Pass "none active"
      | Some (J.Arr actives) ->
        let names =
          List.filter_map (fun a -> str "rule" a) actives
          |> List.sort_uniq compare
        in
        check name Warn
          (Printf.sprintf "%d active: %s" (List.length actives)
             (String.concat ", " names))
      | Some _ -> check name Fail "malformed active member"))

(* Series-backed checks share one scrape of /series.json. *)
let check_series ~port =
  match fetch ~port "/series.json" with
  | Error msg -> [ check "series endpoint" Fail msg ]
  | Ok (status, _) when status <> 200 ->
    [
      check "series endpoint" Fail
        (Printf.sprintf "/series.json answers %d" status);
    ]
  | Ok (_, body) -> (
    match J.parse body with
    | Error msg ->
      [ check "series endpoint" Fail ("/series.json unparseable: " ^ msg) ]
    | Ok doc ->
      let all = Live.series_of_json doc in
      let up =
        List.filter_map
          (fun (n, ls, pts) ->
            if n = "up" then
              Option.map
                (fun site -> (site, List.rev pts))
                (List.assoc_opt "site" ls)
            else None)
          all
      in
      let up_check =
        let name = "federation up{site}" in
        if up = [] then check name Pass "no federated sites"
        else
          let down =
            List.filter_map
              (fun (site, pts) ->
                match pts with
                | (_, v) :: _ when v < 1.0 -> Some site
                | _ -> None)
              up
          in
          if down = [] then
            check name Pass
              (Printf.sprintf "%d site%s up" (List.length up)
                 (if List.length up = 1 then "" else "s"))
          else
            check name Fail ("down: " ^ String.concat ", " down)
      in
      let cache_check =
        let name = "cache hit-rate sanity" in
        let pts =
          List.concat_map
            (fun (n, _, pts) ->
              if n = "flow_cache_hit_rate" then pts else [])
            all
        in
        if pts = [] then check name Pass "no cached lookups recorded"
        else
          let bad = List.filter (fun (_, v) -> v < 0.0 || v > 1.0) pts in
          if bad = [] then
            check name Pass
              (Printf.sprintf "%d point%s within [0, 1]" (List.length pts)
                 (if List.length pts = 1 then "" else "s"))
          else
            check name Fail
              (Printf.sprintf "%d point%s outside [0, 1]" (List.length bad)
                 (if List.length bad = 1 then "" else "s"))
      in
      [ up_check; cache_check ])

let live_checks ~port =
  [ check_endpoint ~port ~name:"service liveness" "/healthz" ]
  @ [ check_endpoint ~port ~name:"service readiness" "/readyz" ]
  @ [ check_lossmap ~port ]
  @ [ check_alerts ~port ]
  @ check_series ~port

(* --- history checks (an on-disk tsdb directory) --------------------- *)

let check_tsdb_segments dir =
  let name = "tsdb segment sweep" in
  match Obs.Tsdb.segments_in_dir dir with
  | [] -> [ check name Warn (Printf.sprintf "no segments under %s" dir) ]
  | segments ->
    let corrupt = ref [] in
    let partial = ref [] in
    let records = ref 0 in
    List.iter
      (fun path ->
        match Obs.Tsdb.Segment.read_all path with
        | Error msg -> corrupt := (path, msg) :: !corrupt
        | Ok (rs, dropped) ->
          records := !records + List.length rs;
          if dropped then partial := path :: !partial)
      segments;
    let sweep =
      match List.rev !corrupt with
      | [] ->
        check name Pass
          (Printf.sprintf "%d segment%s, %d records valid"
             (List.length segments)
             (if List.length segments = 1 then "" else "s")
             !records)
      | (path, msg) :: _ as all ->
        check name Fail
          (Printf.sprintf "%d corrupt segment%s; first: %s (%s)"
             (List.length all)
             (if List.length all = 1 then "" else "s")
             (Filename.basename path) msg)
    in
    let tails =
      match List.rev !partial with
      | [] -> []
      | ps ->
        [
          check "tsdb unsealed tails" Warn
            (Printf.sprintf
               "%d segment%s with a torn tail record (killed writer): %s"
               (List.length ps)
               (if List.length ps = 1 then "" else "s")
               (String.concat ", " (List.map Filename.basename ps)));
        ]
    in
    sweep :: tails

(* Conservation from persisted series alone: per (site, at, res) bucket,
   Σ ledger_offered_frames = Σ ledger_stored_frames +
   Σ loss_attributed_frames.  Works on raw points and on downsampled
   buckets alike, because compaction is sum-preserving and buckets the
   two sides of the identity identically. *)
let check_history_conservation segments =
  let name = "ledger conservation" in
  match Obs.Tsdb.query segments with
  | exception Obs.Tsdb.Corrupt msg -> check name Fail msg
  | groups ->
    let table = Hashtbl.create 64 in
    let entry site at res =
      let key = (site, at, res) in
      match Hashtbl.find_opt table key with
      | Some e -> e
      | None ->
        let e = (ref 0.0, ref 0.0, ref 0.0) in
        Hashtbl.add table key e;
        e
    in
    let saw_ledger = ref false in
    List.iter
      (fun (n, ls, records) ->
        match List.assoc_opt "site" ls with
        | None -> ()
        | Some site ->
          let side =
            match n with
            | "ledger_offered_frames" -> Some `Offered
            | "ledger_stored_frames" -> Some `Stored
            | "loss_attributed_frames" -> Some `Attributed
            | _ -> None
          in
          (match side with
          | None -> ()
          | Some side ->
            saw_ledger := true;
            List.iter
              (fun (r : Obs.Tsdb.record) ->
                let offered, stored, attributed =
                  entry site r.Obs.Tsdb.t_at r.Obs.Tsdb.t_res
                in
                let cell =
                  match side with
                  | `Offered -> offered
                  | `Stored -> stored
                  | `Attributed -> attributed
                in
                cell := !cell +. r.Obs.Tsdb.t_sum)
              records))
      groups;
    if not !saw_ledger then
      check name Warn "no ledger series in the history (older run?)"
    else begin
      let violations = ref [] in
      let cells = ref 0 in
      Hashtbl.iter
        (fun (site, at, _) (offered, stored, attributed) ->
          incr cells;
          let residual = !offered -. !stored -. !attributed in
          if not (conserved ~offered:!offered residual) then
            violations :=
              Printf.sprintf "site %s at %g: residual %g frames" site at
                residual
              :: !violations)
        table;
      match List.rev !violations with
      | [] ->
        check name Pass
          (Printf.sprintf
             "offered = stored + attributed over %d (site, time) cell%s"
             !cells
             (if !cells = 1 then "" else "s"))
      | v :: _ as all ->
        check name Fail
          (Printf.sprintf "%d violation%s; first: %s" (List.length all)
             (if List.length all = 1 then "" else "s")
             v)
    end

let check_history_up segments =
  let name = "federation up{site}" in
  match Obs.Tsdb.query ~pred:(Obs.Tsdb.predicate ~name:"up" ()) segments with
  | exception Obs.Tsdb.Corrupt msg -> check name Fail msg
  | [] -> check name Pass "no federated sites"
  | groups ->
    let down =
      List.filter_map
        (fun (_, ls, records) ->
          match (List.assoc_opt "site" ls, List.rev records) with
          | Some site, last :: _ ->
            let _, v = Obs.Tsdb.point_of_record last in
            if v < 1.0 then Some site else None
          | _ -> None)
        groups
    in
    if down = [] then
      check name Pass
        (Printf.sprintf "%d site%s up at last scrape" (List.length groups)
           (if List.length groups = 1 then "" else "s"))
    else check name Fail ("down at last scrape: " ^ String.concat ", " down)

let check_history_cache segments =
  let name = "cache hit-rate sanity" in
  match
    Obs.Tsdb.query
      ~pred:(Obs.Tsdb.predicate ~name:"flow_cache_hit_rate" ())
      segments
  with
  | exception Obs.Tsdb.Corrupt msg -> check name Fail msg
  | [] -> check name Pass "no cached lookups recorded"
  | groups ->
    let records = List.concat_map (fun (_, _, rs) -> rs) groups in
    let bad =
      List.filter
        (fun (r : Obs.Tsdb.record) ->
          r.Obs.Tsdb.t_min < 0.0 || r.Obs.Tsdb.t_max > 1.0)
        records
    in
    if bad = [] then
      check name Pass
        (Printf.sprintf "%d record%s within [0, 1]" (List.length records)
           (if List.length records = 1 then "" else "s"))
    else
      check name Fail
        (Printf.sprintf "%d record%s outside [0, 1]" (List.length bad)
           (if List.length bad = 1 then "" else "s"))

let history_checks ~dir =
  let segments = Obs.Tsdb.segments_in_dir dir in
  check_tsdb_segments dir
  @
  if segments = [] then []
  else
    [
      check_history_conservation segments;
      check_history_up segments;
      check_history_cache segments;
    ]

(* --- optional flow-store sweep -------------------------------------- *)

let flow_store_checks ~dir =
  let name = "flow-store sweep" in
  match Analysis.Flow_store.segments_in_dir dir with
  | [] -> [ check name Warn (Printf.sprintf "no segments under %s" dir) ]
  | segments ->
    let corrupt = ref [] in
    let records = ref 0 in
    List.iter
      (fun path ->
        match Analysis.Flow_store.query [ path ] with
        | result ->
          records :=
            !records
            + result.Analysis.Flow_store.stats
                .Analysis.Flow_store.records_scanned
        | exception Analysis.Flow_store.Corrupt msg ->
          corrupt := (path, msg) :: !corrupt)
      segments;
    (match List.rev !corrupt with
    | [] ->
      [
        check name Pass
          (Printf.sprintf "%d segment%s, %d records valid"
             (List.length segments)
             (if List.length segments = 1 then "" else "s")
             !records);
      ]
    | (path, msg) :: _ as all ->
      [
        check name Fail
          (Printf.sprintf "%d corrupt segment%s; first: %s (%s)"
             (List.length all)
             (if List.length all = 1 then "" else "s")
             (Filename.basename path) msg);
      ])

(* --- entry point ----------------------------------------------------- *)

let run ?live ?history ?flow_store () =
  let checks =
    (match live with Some port -> live_checks ~port | None -> [])
    @ (match history with Some dir -> history_checks ~dir | None -> [])
    @ match flow_store with Some dir -> flow_store_checks ~dir | None -> []
  in
  if checks = [] then begin
    prerr_endline "doctor: nothing to check (need --live PORT and/or --history DIR)";
    2
  end
  else if render checks > 0 then 1
  else 0
